//! Simulated-time tracing: per-job, per-place, per-phase span records.
//!
//! The paper argues with *breakdowns* — Figures 6 and 7 attribute running
//! time to map, shuffle, sort and reduce phases, and the headline claims
//! ("iteration 2 performs no disk reads", "0% remote shuffle moves zero
//! bytes") are per-phase, per-place statements. This module turns the cost
//! model into an inspectable instrument: a [`Trace`] records [`Span`]s
//! `{job, phase, place, task, sim-time start/end, charge totals}` in
//! **simulated** seconds, with rollups ([`Rollup`]), a Chrome trace-event
//! exporter ([`Trace::chrome_json`]) and a per-job text report
//! ([`Trace::report`]).
//!
//! # Span model
//!
//! Engines and storage layers wrap units of work in [`span`] guards. While
//! a span is open on a thread, every priced charge funnelled through
//! [`crate::Node::charge`] is attributed to the *innermost* open span on
//! that thread (exclusive attribution: a `Sort` span nested inside a
//! `Reduce` span absorbs the sort charges; the reduce span keeps only its
//! own). Span start/end times are read from the metered node's clock, so a
//! span's duration is exactly the simulated seconds the cost model billed
//! between entry and exit — never wall-clock time, which would differ from
//! run to run and between serial and parallel execution.
//!
//! Tasks run against *scratch* nodes whose clocks start at zero (see
//! [`crate::Cluster::scratch_node`] and [`crate::pool::run_wave`]): spans
//! recorded under a scratch meter are buffered thread-locally as
//! wave-relative [`RelSpan`]s, which the engine drains inside the wave
//! closure (same thread) via [`take_pending`] and rebases onto the place's
//! absolute clock with [`Trace::record_rebased`].
//!
//! # Determinism rules
//!
//! * Recording never touches clocks or [`crate::Metrics`]: simulated
//!   seconds, outputs, counters and `MetricsSnapshot`s are bit-identical
//!   with tracing on or off, serial or parallel.
//! * All span times derive from per-clock charge sequences that are
//!   themselves deterministic, so span *contents* are bit-identical across
//!   runs; only the order of arrival differs when place threads record
//!   concurrently. [`Trace::spans`] therefore returns the log in a
//!   canonical order (job, place, start, end, phase, task, label).
//! * Disabled (the default), the recorder is zero-allocation: one relaxed
//!   atomic load per charge, and span guards run their closure directly.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::cost::Charge;
use crate::meter::current_meter;

/// The phase of a job a span belongs to. Phases are the rows of the
/// paper's breakdowns; `Io` and `Cache` carry storage-layer detail spans
/// that nest inside task phases.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Phase {
    /// Job submission overhead (the fixed cost Figure 6 calls out).
    Submit,
    /// Driver-side setup: split computation, distributed-cache loads.
    Setup,
    /// Map task execution.
    Map,
    /// Moving map output to reducers: serialization, fetch, ingest.
    Shuffle,
    /// Place/node-level shared combining of map output before shuffle
    /// serialization (absorb + drain of the combine tables).
    Combine,
    /// Sorting: sort-buffer runs, spills, merges, reduce-side sorts.
    Sort,
    /// Reduce task execution.
    Reduce,
    /// Filesystem reads/writes (nested inside task spans).
    Io,
    /// Key-value cache lookups: hits, misses, puts.
    Cache,
    /// Cluster-wide synchronization and heartbeat rounds.
    Barrier,
}

impl Phase {
    /// Stable lowercase name, used as the Chrome trace `cat` field.
    pub fn as_str(self) -> &'static str {
        match self {
            Phase::Submit => "submit",
            Phase::Setup => "setup",
            Phase::Map => "map",
            Phase::Shuffle => "shuffle",
            Phase::Combine => "combine",
            Phase::Sort => "sort",
            Phase::Reduce => "reduce",
            Phase::Io => "io",
            Phase::Cache => "cache",
            Phase::Barrier => "barrier",
        }
    }

    /// Every phase, in report order.
    pub const ALL: [Phase; 10] = [
        Phase::Submit,
        Phase::Setup,
        Phase::Map,
        Phase::Shuffle,
        Phase::Combine,
        Phase::Sort,
        Phase::Reduce,
        Phase::Io,
        Phase::Cache,
        Phase::Barrier,
    ];
}

/// Per-span charge totals: what the cost model billed while the span was
/// the innermost one open on its thread (exclusive attribution).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct ChargeTotals {
    /// Simulated seconds billed (sum of priced charge durations).
    pub busy_seconds: f64,
    /// Bytes read from simulated local disks.
    pub disk_bytes_read: u64,
    /// Bytes written to simulated local disks.
    pub disk_bytes_written: u64,
    /// Bytes moved across the simulated network.
    pub net_bytes: u64,
    /// Bytes serialized.
    pub ser_bytes: u64,
    /// Bytes deserialized.
    pub deser_bytes: u64,
    /// Bytes deep-cloned.
    pub clone_bytes: u64,
    /// Objects allocated.
    pub allocs: u64,
    /// Records comparison-sorted.
    pub records_sorted: u64,
    /// Task attempts started.
    pub task_startups: u64,
    /// Heartbeat rounds.
    pub heartbeats: u64,
    /// Job submissions.
    pub job_submits: u64,
}

impl ChargeTotals {
    fn add(&mut self, charge: Charge, dt: f64) {
        self.busy_seconds += dt;
        match charge {
            Charge::DiskRead { bytes } => self.disk_bytes_read += bytes,
            Charge::DiskWrite { bytes } => self.disk_bytes_written += bytes,
            Charge::NetTransfer { bytes } => self.net_bytes += bytes,
            Charge::Serialize { bytes } => self.ser_bytes += bytes,
            Charge::Deserialize { bytes } => self.deser_bytes += bytes,
            Charge::Clone { bytes } => self.clone_bytes += bytes,
            Charge::Alloc { objects } => self.allocs += objects,
            Charge::Sort { records } => self.records_sorted += records,
            Charge::TaskStartup => self.task_startups += 1,
            Charge::Heartbeat => self.heartbeats += 1,
            Charge::JobSubmit => self.job_submits += 1,
            Charge::Barrier => {}
            Charge::Compute { .. } => {}
        }
    }

    /// Counter-wise sum of `self` and `other`.
    pub fn merge(&mut self, other: &ChargeTotals) {
        self.busy_seconds += other.busy_seconds;
        self.disk_bytes_read += other.disk_bytes_read;
        self.disk_bytes_written += other.disk_bytes_written;
        self.net_bytes += other.net_bytes;
        self.ser_bytes += other.ser_bytes;
        self.deser_bytes += other.deser_bytes;
        self.clone_bytes += other.clone_bytes;
        self.allocs += other.allocs;
        self.records_sorted += other.records_sorted;
        self.task_startups += other.task_startups;
        self.heartbeats += other.heartbeats;
        self.job_submits += other.job_submits;
    }
}

/// One traced unit of work, in absolute simulated seconds on its place's
/// clock.
#[derive(Clone, Debug, PartialEq)]
pub struct Span {
    /// Job id from [`Trace::begin_job`].
    pub job: u64,
    /// Which phase of the job this work belongs to.
    pub phase: Phase,
    /// The place (node) the work ran on.
    pub place: usize,
    /// Task / partition index, when the work is per-task.
    pub task: Option<u64>,
    /// A short static operation label ("map", "dfs_read", "cache_hit", …).
    pub label: &'static str,
    /// Simulated start time, seconds.
    pub start: f64,
    /// Simulated end time, seconds.
    pub end: f64,
    /// Charges billed while this span was innermost (exclusive).
    pub charges: ChargeTotals,
}

impl Span {
    fn sort_key(&self) -> (u64, usize, u64, u64, Phase, Option<u64>, &'static str) {
        // Times are non-negative, so the IEEE-754 bit pattern orders like
        // the value and keeps the comparison total (no NaN surprises).
        (
            self.job,
            self.place,
            self.start.to_bits(),
            self.end.to_bits(),
            self.phase,
            self.task,
            self.label,
        )
    }
}

/// A span timed on a scratch node's zero-based clock, waiting to be
/// rebased onto its place's absolute clock.
#[derive(Clone, Debug)]
pub struct RelSpan {
    /// Phase of the work.
    pub phase: Phase,
    /// Task / partition index.
    pub task: Option<u64>,
    /// Operation label.
    pub label: &'static str,
    /// Start offset on the scratch clock, seconds.
    pub start: f64,
    /// End offset on the scratch clock, seconds.
    pub end: f64,
    /// Exclusive charge totals.
    pub charges: ChargeTotals,
}

#[derive(Debug, Default)]
struct Log {
    jobs: Vec<String>,
    spans: Vec<Span>,
}

#[derive(Debug, Default)]
struct TraceInner {
    enabled: AtomicBool,
    current_job: AtomicU64,
    log: Mutex<Log>,
}

/// A shared, thread-safe recorder of simulated-time spans. `Clone` is
/// shallow: every [`crate::Node`] of a cluster holds a handle to the same
/// recorder. Disabled (the default) it costs one relaxed atomic load per
/// charge and allocates nothing.
#[derive(Clone, Debug, Default)]
pub struct Trace {
    inner: Arc<TraceInner>,
    /// When set, this handle is *pinned* to one job: spans recorded through
    /// it always carry this id, regardless of the shared `current_job`
    /// register. Job-lane clusters hold pinned handles so concurrent jobs
    /// attribute their spans correctly (see `Cluster::job_lane`).
    pin: Option<u64>,
}

thread_local! {
    /// Accumulator stack mirroring the span nesting on this thread.
    static ACTIVE: RefCell<Vec<ChargeTotals>> = const { RefCell::new(Vec::new()) };
    /// Completed scratch-clock spans awaiting rebase by the engine.
    static PENDING: RefCell<Vec<RelSpan>> = const { RefCell::new(Vec::new()) };
}

impl Trace {
    /// A fresh, disabled recorder.
    pub fn new() -> Self {
        Trace::default()
    }

    /// Turn recording on.
    pub fn enable(&self) {
        self.inner.enabled.store(true, Ordering::Relaxed);
    }

    /// Turn recording off. The log is kept; use [`Trace::clear`] to drop it.
    pub fn disable(&self) {
        self.inner.enabled.store(false, Ordering::Relaxed);
    }

    /// Whether spans are currently being recorded.
    pub fn is_enabled(&self) -> bool {
        self.inner.enabled.load(Ordering::Relaxed)
    }

    /// Register a job and make it current; subsequent spans carry the
    /// returned id. Returns 0 without recording anything when disabled.
    /// On a pinned handle (see [`Trace::for_job`]) the pin is returned
    /// without registering a new name — the job was already registered by
    /// whoever pinned the handle.
    pub fn begin_job(&self, name: &str) -> u64 {
        if !self.is_enabled() {
            return 0;
        }
        if let Some(pin) = self.pin {
            return pin;
        }
        let mut log = self.inner.log.lock();
        let id = log.jobs.len() as u64;
        log.jobs.push(name.to_string());
        self.inner.current_job.store(id, Ordering::Relaxed);
        id
    }

    /// Register a job name and return its id WITHOUT making it current.
    /// The multi-tenant job server registers every submission in admission
    /// order (keeping ids deterministic) and pins lane handles to the ids.
    /// Returns 0 without recording anything when disabled.
    pub fn register_job(&self, name: &str) -> u64 {
        if !self.is_enabled() {
            return 0;
        }
        let mut log = self.inner.log.lock();
        let id = log.jobs.len() as u64;
        log.jobs.push(name.to_string());
        id
    }

    /// A handle pinned to `job`: spans recorded through it (and through any
    /// clone of it) always carry that id.
    pub fn for_job(&self, job: u64) -> Trace {
        Trace {
            inner: Arc::clone(&self.inner),
            pin: Some(job),
        }
    }

    /// The id spans recorded through this handle will carry: the pin when
    /// set, otherwise the most recently begun job.
    pub fn current_job(&self) -> u64 {
        self.pin
            .unwrap_or_else(|| self.inner.current_job.load(Ordering::Relaxed))
    }

    /// Names of all jobs begun so far, indexed by job id.
    pub fn job_names(&self) -> Vec<String> {
        self.inner.log.lock().jobs.clone()
    }

    /// Append one absolute-time span to the log.
    pub fn record(&self, span: Span) {
        if !self.is_enabled() {
            return;
        }
        self.inner.log.lock().spans.push(span);
    }

    /// Rebase scratch-clock spans onto `place`'s absolute clock (adding
    /// `base`, the place's clock reading when the wave began) and log them
    /// under `job`.
    pub fn record_rebased(&self, job: u64, place: usize, base: f64, rel: Vec<RelSpan>) {
        if rel.is_empty() || !self.is_enabled() {
            return;
        }
        let mut log = self.inner.log.lock();
        log.spans.extend(rel.into_iter().map(|r| Span {
            job,
            phase: r.phase,
            place,
            task: r.task,
            label: r.label,
            start: base + r.start,
            end: base + r.end,
            charges: r.charges,
        }));
    }

    /// Attribute one priced charge to the innermost open span on this
    /// thread. Called by [`crate::Node::charge`]; a no-op when disabled or
    /// when no span is open.
    pub(crate) fn note_charge(&self, charge: Charge, dt: f64) {
        if !self.is_enabled() {
            return;
        }
        ACTIVE.with(|a| {
            if let Some(top) = a.borrow_mut().last_mut() {
                top.add(charge, dt);
            }
        });
    }

    /// The recorded spans, in canonical deterministic order.
    pub fn spans(&self) -> Vec<Span> {
        let mut spans = self.inner.log.lock().spans.clone();
        spans.sort_by(|a, b| a.sort_key().cmp(&b.sort_key()));
        spans
    }

    /// Number of spans recorded so far.
    pub fn len(&self) -> usize {
        self.inner.log.lock().spans.len()
    }

    /// Whether the log is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drop all recorded jobs and spans (enablement is unchanged).
    pub fn clear(&self) {
        let mut log = self.inner.log.lock();
        log.jobs.clear();
        log.spans.clear();
        self.inner.current_job.store(0, Ordering::Relaxed);
    }

    /// Per-(job, place, phase) rollup of the current log.
    pub fn rollup(&self) -> Rollup {
        Rollup::from_spans(&self.spans())
    }

    /// The log as Chrome trace-event JSON (load in `chrome://tracing` or
    /// <https://ui.perfetto.dev>): one lane (`tid`) per place, one complete
    /// `"X"` event per span, timestamps in simulated microseconds.
    pub fn chrome_json(&self) -> String {
        chrome_json(&self.spans(), &self.job_names())
    }

    /// Like [`Trace::chrome_json`], with `extra` pre-rendered trace events
    /// appended — the hook the multi-tenant job server uses to merge its
    /// wall-clock flight-recorder tracks (pid 1: one track per dispatch
    /// lane, per-client submit tracks, ticket flow events) into the same
    /// file as the simulated-time place tracks (pid 0).
    pub fn chrome_json_with(&self, extra: &[String]) -> String {
        chrome_json_with(&self.spans(), &self.job_names(), extra)
    }

    /// Human-readable per-job report (Hadoop-job-history style): one
    /// phase-by-phase table per job plus per-place busy totals.
    pub fn report(&self) -> String {
        render_report(&self.spans(), &self.job_names())
    }
}

/// Run `f` inside a span of `phase` attributed to the node metered on this
/// thread. With no meter installed, or with that node's trace disabled,
/// `f` runs bare — generators and functional tests stay ceremony-free.
///
/// Under a scratch meter the completed span is buffered thread-locally
/// (drain with [`take_pending`] on the same thread); under a real node it
/// is logged directly with absolute times.
pub fn span<R>(phase: Phase, label: &'static str, task: Option<u64>, f: impl FnOnce() -> R) -> R {
    let Some(meter) = current_meter() else {
        return f();
    };
    let node = meter.node().clone();
    let trace = node.trace().clone();
    if !trace.is_enabled() {
        return f();
    }

    let start = node.clock().now();
    ACTIVE.with(|a| a.borrow_mut().push(ChargeTotals::default()));

    // Close the span even on unwind so outer spans don't inherit a stuck
    // accumulator (mirrors the meter stack's panic discipline).
    struct Close {
        trace: Trace,
        node: crate::cluster::Node,
        phase: Phase,
        label: &'static str,
        task: Option<u64>,
        start: f64,
    }
    impl Drop for Close {
        fn drop(&mut self) {
            let charges = ACTIVE
                .with(|a| a.borrow_mut().pop())
                .unwrap_or_default();
            let end = self.node.clock().now();
            if self.node.is_scratch() {
                PENDING.with(|p| {
                    p.borrow_mut().push(RelSpan {
                        phase: self.phase,
                        task: self.task,
                        label: self.label,
                        start: self.start,
                        end,
                        charges,
                    })
                });
            } else {
                self.trace.record(Span {
                    job: self.trace.current_job(),
                    phase: self.phase,
                    place: self.node.id(),
                    task: self.task,
                    label: self.label,
                    start: self.start,
                    end,
                    charges,
                });
            }
        }
    }
    let _close = Close {
        trace,
        node,
        phase,
        label,
        task,
        start,
    };
    f()
}

/// Record an instant (zero-duration) span at the metered node's current
/// simulated time — cache hits/misses and other point events. No-op when
/// unmetered or disabled.
pub fn mark(phase: Phase, label: &'static str, task: Option<u64>) {
    let Some(meter) = current_meter() else {
        return;
    };
    let node = meter.node();
    let trace = node.trace();
    if !trace.is_enabled() {
        return;
    }
    let now = node.clock().now();
    if node.is_scratch() {
        PENDING.with(|p| {
            p.borrow_mut().push(RelSpan {
                phase,
                task,
                label,
                start: now,
                end: now,
                charges: ChargeTotals::default(),
            })
        });
    } else {
        trace.record(Span {
            job: trace.current_job(),
            phase,
            place: node.id(),
            task,
            label,
            start: now,
            end: now,
            charges: ChargeTotals::default(),
        });
    }
}

/// Drain the scratch-clock spans buffered on this thread. Engines call
/// this inside the wave closure (the thread the task ran on) and pass the
/// result to [`Trace::record_rebased`]. Returns an empty `Vec` (no
/// allocation) when nothing was buffered.
pub fn take_pending() -> Vec<RelSpan> {
    PENDING.with(|p| std::mem::take(&mut *p.borrow_mut()))
}

/// One row of a [`Rollup`]: the spans of one (job, place, phase) cell.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct RollupRow {
    /// Number of spans in the cell.
    pub count: u64,
    /// Sum of span durations (inclusive of nested spans from *other*
    /// phases, e.g. a map task's `Io` time also elapses inside its `Map`
    /// span — compare with `charges.busy_seconds`, which is exclusive).
    pub span_seconds: f64,
    /// Exclusive charge totals (no double counting across nesting).
    pub charges: ChargeTotals,
}

/// Dimensional rollups of a span log: per-place × per-phase tables keyed
/// by job, the trace-level analogue of a `MetricsSnapshot` diff.
#[derive(Clone, Debug, Default)]
pub struct Rollup {
    rows: BTreeMap<(u64, usize, Phase), RollupRow>,
}

impl Rollup {
    /// Build a rollup from a span log.
    pub fn from_spans(spans: &[Span]) -> Self {
        let mut rows: BTreeMap<(u64, usize, Phase), RollupRow> = BTreeMap::new();
        for s in spans {
            let row = rows.entry((s.job, s.place, s.phase)).or_default();
            row.count += 1;
            row.span_seconds += s.end - s.start;
            row.charges.merge(&s.charges);
        }
        Rollup { rows }
    }

    /// Iterate all (job, place, phase) cells in key order.
    pub fn rows(&self) -> impl Iterator<Item = (&(u64, usize, Phase), &RollupRow)> {
        self.rows.iter()
    }

    /// All job ids present.
    pub fn jobs(&self) -> Vec<u64> {
        let mut v: Vec<u64> = self.rows.keys().map(|k| k.0).collect();
        v.dedup();
        v
    }

    /// All places with spans for `job`.
    pub fn places(&self, job: u64) -> Vec<usize> {
        let mut v: Vec<usize> = self
            .rows
            .keys()
            .filter(|k| k.0 == job)
            .map(|k| k.1)
            .collect();
        v.sort_unstable();
        v.dedup();
        v
    }

    /// Summed row for one phase of `job` across all places.
    pub fn phase_row(&self, job: u64, phase: Phase) -> RollupRow {
        let mut total = RollupRow::default();
        for ((j, _, ph), row) in &self.rows {
            if *j == job && *ph == phase {
                total.count += row.count;
                total.span_seconds += row.span_seconds;
                total.charges.merge(&row.charges);
            }
        }
        total
    }

    /// Exclusive charge totals for one phase of `job` across all places.
    pub fn phase_totals(&self, job: u64, phase: Phase) -> ChargeTotals {
        self.phase_row(job, phase).charges
    }

    /// Exclusive charge totals for `job` across all places and phases —
    /// safe to sum because attribution is exclusive.
    pub fn job_totals(&self, job: u64) -> ChargeTotals {
        let mut total = ChargeTotals::default();
        for ((j, _, _), row) in &self.rows {
            if *j == job {
                total.merge(&row.charges);
            }
        }
        total
    }

    /// Exclusive busy seconds for one place of `job` across all phases.
    pub fn place_busy_seconds(&self, job: u64, place: usize) -> f64 {
        self.rows
            .iter()
            .filter(|((j, p, _), _)| *j == job && *p == place)
            .map(|(_, row)| row.charges.busy_seconds)
            .sum()
    }
}

/// Escape `s` for inclusion inside a JSON string literal (no surrounding
/// quotes added). Shared by the Chrome exporter and the bench reporters so
/// the workspace needs no JSON dependency.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn micros(seconds: f64) -> String {
    format!("{:.3}", seconds * 1e6)
}

/// Render a span log as Chrome trace-event JSON. Simulated seconds map to
/// trace microseconds; each place gets its own lane via `tid`, named by a
/// `thread_name` metadata event.
pub fn chrome_json(spans: &[Span], job_names: &[String]) -> String {
    chrome_json_with(spans, job_names, &[])
}

/// [`chrome_json`] with `extra` pre-rendered event objects (each a complete
/// JSON object, no trailing comma) appended after the span events. Callers
/// that add wall-clock tracks should use a distinct `pid` so viewers show
/// them as a separate process from the simulated-time place lanes (pid 0).
pub fn chrome_json_with(spans: &[Span], job_names: &[String], extra: &[String]) -> String {
    let mut places: Vec<usize> = spans.iter().map(|s| s.place).collect();
    places.sort_unstable();
    places.dedup();

    let mut events: Vec<String> = Vec::with_capacity(spans.len() + places.len() + extra.len() + 1);
    events.push(
        "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,\"tid\":0,\
         \"args\":{\"name\":\"simulated cluster\"}}"
            .to_string(),
    );
    for p in &places {
        events.push(format!(
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":{p},\
             \"args\":{{\"name\":\"place {p}\"}}}}"
        ));
        events.push(format!(
            "{{\"name\":\"thread_sort_index\",\"ph\":\"M\",\"pid\":0,\"tid\":{p},\
             \"args\":{{\"sort_index\":{p}}}}}"
        ));
    }

    for s in spans {
        let job_name = job_names
            .get(s.job as usize)
            .map(String::as_str)
            .unwrap_or("?");
        let mut args = format!("\"job\":\"{}\"", json_escape(job_name));
        if let Some(t) = s.task {
            args.push_str(&format!(",\"task\":{t}"));
        }
        let c = &s.charges;
        args.push_str(&format!(",\"busy_s\":{:.9}", c.busy_seconds));
        for (key, v) in [
            ("disk_read", c.disk_bytes_read),
            ("disk_write", c.disk_bytes_written),
            ("net", c.net_bytes),
            ("ser", c.ser_bytes),
            ("deser", c.deser_bytes),
            ("clone", c.clone_bytes),
            ("allocs", c.allocs),
            ("sorted", c.records_sorted),
        ] {
            if v != 0 {
                args.push_str(&format!(",\"{key}\":{v}"));
            }
        }
        events.push(format!(
            "{{\"name\":\"{name}\",\"cat\":\"{cat}\",\"ph\":\"X\",\
             \"ts\":{ts},\"dur\":{dur},\"pid\":0,\"tid\":{tid},\"args\":{{{args}}}}}",
            name = json_escape(s.label),
            cat = s.phase.as_str(),
            ts = micros(s.start),
            dur = micros(s.end - s.start),
            tid = s.place,
        ));
    }

    events.extend(extra.iter().cloned());

    let mut out = String::from("[\n");
    out.push_str(&events.join(",\n"));
    out.push_str("\n]\n");
    out
}

/// Render a human-readable per-job report from a span log.
pub fn render_report(spans: &[Span], job_names: &[String]) -> String {
    let rollup = Rollup::from_spans(spans);
    let mut out = String::new();
    for job in rollup.jobs() {
        let name = job_names
            .get(job as usize)
            .map(String::as_str)
            .unwrap_or("?");
        out.push_str(&format!("== job {job}: {name} ==\n"));
        out.push_str(&format!(
            "{:<9} {:>6} {:>12} {:>12} {:>12} {:>12} {:>12} {:>12} {:>10}\n",
            "phase", "spans", "busy_s", "disk_rd_B", "disk_wr_B", "net_B", "ser_B", "deser_B",
            "sorted"
        ));
        for phase in Phase::ALL {
            let row = rollup.phase_row(job, phase);
            if row.count == 0 {
                continue;
            }
            let c = row.charges;
            out.push_str(&format!(
                "{:<9} {:>6} {:>12.6} {:>12} {:>12} {:>12} {:>12} {:>12} {:>10}\n",
                phase.as_str(),
                row.count,
                c.busy_seconds,
                c.disk_bytes_read,
                c.disk_bytes_written,
                c.net_bytes,
                c.ser_bytes,
                c.deser_bytes,
                c.records_sorted,
            ));
        }
        let places = rollup.places(job);
        if !places.is_empty() {
            out.push_str("per-place busy_s:");
            for p in places {
                out.push_str(&format!(" p{p}={:.6}", rollup.place_busy_seconds(job, p)));
            }
            out.push('\n');
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::Cluster;
    use crate::cost::CostModel;
    use crate::meter::{with_meter, Meter};

    #[test]
    fn disabled_records_nothing() {
        let c = Cluster::new(2, CostModel::default());
        assert!(!c.trace().is_enabled());
        with_meter(Meter::new(c.node(0).clone()), || {
            span(Phase::Map, "map", Some(0), || {
                crate::meter::charge(Charge::DiskRead { bytes: 1 << 20 });
            });
            mark(Phase::Cache, "cache_hit", None);
        });
        assert!(c.trace().is_empty());
        assert!(take_pending().is_empty());
        assert_eq!(c.trace().begin_job("j"), 0);
        assert!(c.trace().job_names().is_empty());
    }

    #[test]
    fn unmetered_span_runs_bare() {
        let out = span(Phase::Io, "dfs_read", None, || 7);
        assert_eq!(out, 7);
        assert!(take_pending().is_empty());
    }

    #[test]
    fn nested_spans_attribute_exclusively() {
        let c = Cluster::new(1, CostModel::default());
        c.trace().enable();
        let job = c.trace().begin_job("wordcount");
        with_meter(Meter::new(c.node(0).clone()), || {
            span(Phase::Reduce, "reduce", Some(3), || {
                crate::meter::charge(Charge::Deserialize { bytes: 100 });
                span(Phase::Sort, "sort", Some(3), || {
                    crate::meter::charge(Charge::Sort { records: 42 });
                });
                crate::meter::charge(Charge::Serialize { bytes: 50 });
            });
        });
        let spans = c.trace().spans();
        assert_eq!(spans.len(), 2);
        let sort = spans.iter().find(|s| s.phase == Phase::Sort).unwrap();
        let reduce = spans.iter().find(|s| s.phase == Phase::Reduce).unwrap();
        assert_eq!(sort.charges.records_sorted, 42);
        assert_eq!(reduce.charges.records_sorted, 0, "exclusive attribution");
        assert_eq!(reduce.charges.deser_bytes, 100);
        assert_eq!(reduce.charges.ser_bytes, 50);
        assert_eq!(reduce.job, job);
        assert_eq!(reduce.place, 0);
        // The sort span nests inside the reduce span on the clock.
        assert!(reduce.start <= sort.start && sort.end <= reduce.end);
        // Durations equal the billed seconds (no other clock movement).
        let rollup = c.trace().rollup();
        assert_eq!(rollup.job_totals(job).records_sorted, 42);
        assert_eq!(rollup.phase_totals(job, Phase::Sort).records_sorted, 42);
    }

    #[test]
    fn scratch_spans_buffer_and_rebase() {
        let c = Cluster::new(2, CostModel::default());
        c.trace().enable();
        let job = c.trace().begin_job("waved");
        c.node(1).clock().advance(5.0);
        let base = c.node(1).clock().now();
        let scratch = c.scratch_node(1);
        with_meter(Meter::new(scratch), || {
            span(Phase::Map, "map", Some(7), || {
                crate::meter::charge(Charge::DiskRead { bytes: 80_000_000 });
            });
        });
        assert!(c.trace().is_empty(), "scratch spans are buffered, not logged");
        let pending = take_pending();
        assert_eq!(pending.len(), 1);
        assert_eq!(pending[0].start, 0.0);
        c.trace().record_rebased(job, 1, base, pending);
        let spans = c.trace().spans();
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].place, 1);
        assert_eq!(spans[0].start, 5.0);
        assert!(spans[0].end > 5.0);
        assert_eq!(spans[0].charges.disk_bytes_read, 80_000_000);
    }

    #[test]
    fn tracing_does_not_perturb_time_or_metrics() {
        let run = |enable: bool| {
            let c = Cluster::new(1, CostModel::default());
            if enable {
                c.trace().enable();
                c.trace().begin_job("j");
            }
            with_meter(Meter::new(c.node(0).clone()), || {
                span(Phase::Map, "map", None, || {
                    crate::meter::charge(Charge::DiskRead { bytes: 12345 });
                    crate::meter::charge(Charge::TaskStartup);
                });
            });
            (c.node(0).clock().now().to_bits(), c.metrics().snapshot())
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn barrier_records_per_place_spans() {
        let c = Cluster::new(3, CostModel::default());
        c.trace().enable();
        c.node(2).clock().advance(10.0);
        let t = c.barrier();
        let spans = c.trace().spans();
        let barriers: Vec<_> = spans.iter().filter(|s| s.phase == Phase::Barrier).collect();
        assert_eq!(barriers.len(), 3, "one barrier span per place");
        for s in &barriers {
            assert_eq!(s.end.to_bits(), t.to_bits());
        }
        assert_eq!(barriers[0].start, 0.0);
        let lagging = barriers.iter().find(|s| s.place == 2).unwrap();
        assert_eq!(lagging.start, 10.0);
    }

    #[test]
    fn chrome_json_is_schema_sane() {
        let c = Cluster::new(2, CostModel::default());
        c.trace().enable();
        c.trace().begin_job("quoted \"name\"\n");
        with_meter(Meter::new(c.node(1).clone()), || {
            span(Phase::Shuffle, "serialize", Some(1), || {
                crate::meter::charge(Charge::Serialize { bytes: 9 });
            });
        });
        let json = c.trace().chrome_json();
        assert!(json.starts_with("[\n"));
        assert!(json.trim_end().ends_with(']'));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"cat\":\"shuffle\""));
        assert!(json.contains("\"tid\":1"));
        assert!(json.contains("thread_name"));
        assert!(json.contains("quoted \\\"name\\\"\\n"), "job name escaped");
        assert!(!json.contains('\u{0}'));
    }

    #[test]
    fn report_renders_phase_rows() {
        let c = Cluster::new(1, CostModel::default());
        c.trace().enable();
        c.trace().begin_job("microbench-iter0");
        with_meter(Meter::new(c.node(0).clone()), || {
            span(Phase::Map, "map", Some(0), || {
                crate::meter::charge(Charge::DiskRead { bytes: 1000 });
            });
            span(Phase::Reduce, "reduce", Some(0), || {
                crate::meter::charge(Charge::Sort { records: 5 });
            });
        });
        let report = c.trace().report();
        assert!(report.contains("microbench-iter0"));
        assert!(report.contains("map"));
        assert!(report.contains("reduce"));
        assert!(report.contains("per-place busy_s: p0="));
    }

    #[test]
    fn pinned_handles_attribute_to_their_job() {
        let c = Cluster::new(1, CostModel::default());
        c.trace().enable();
        let a = c.trace().register_job("job-a");
        let b = c.trace().register_job("job-b");
        assert_eq!(c.trace().job_names(), vec!["job-a", "job-b"]);
        // register_job does not move the current-job register...
        assert_eq!(c.trace().current_job(), 0);
        // ...but a pinned handle always reports (and begins as) its pin.
        let pinned = c.trace().for_job(b);
        assert_eq!(pinned.current_job(), b);
        assert_eq!(pinned.begin_job("ignored"), b, "begin_job returns the pin");
        assert_eq!(
            pinned.job_names().len(),
            2,
            "begin_job on a pinned handle registers nothing"
        );
        // Spans recorded via a lane (whose nodes hold pinned handles) carry
        // the pinned id even while another job is 'current'.
        let lane = c.job_lane(b);
        c.trace().begin_job("job-c"); // moves the shared register
        with_meter(Meter::new(lane.node(0).clone()), || {
            span(Phase::Map, "map", None, || {
                crate::meter::charge(Charge::DiskRead { bytes: 100 });
            });
        });
        let spans = c.trace().spans();
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].job, b);
        let _ = a;
    }

    #[test]
    fn span_closes_on_panic() {
        let c = Cluster::new(1, CostModel::default());
        c.trace().enable();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            with_meter(Meter::new(c.node(0).clone()), || {
                span(Phase::Map, "map", None, || panic!("boom"));
            })
        }));
        assert!(result.is_err());
        ACTIVE.with(|a| assert!(a.borrow().is_empty(), "accumulator leaked"));
        assert_eq!(c.trace().len(), 1, "span still recorded on unwind");
    }
}
