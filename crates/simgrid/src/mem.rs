//! Per-place memory accounting: the substrate of the `m3r-mem` governance
//! subsystem.
//!
//! The paper is explicit that M3R "trades resources (memory) for
//! performance" and requires the job family's working set to fit in main
//! memory (§2, §7). To study what happens when it does not, every
//! [`crate::Cluster`] carries a [`MemAccountant`]: a shared tally of the
//! live bytes each place holds in the three long-lived stores the engines
//! maintain — the kv-store cache ([`MemClass::Cache`]), in-flight shuffle
//! stream payloads ([`MemClass::Shuffle`]) and buffer-pool free lists
//! ([`MemClass::Pool`]).
//!
//! Like [`crate::trace`], the accountant sits on hot paths but must be
//! simulation-invisible by default: with an infinite budget (the default),
//! `grow`/`shrink` are a handful of relaxed atomics, charge nothing, and
//! change no behaviour — equivalence tests in higher crates assert
//! bit-identical simulated seconds, counters and traces with the accountant
//! on and off. A *finite* budget is what higher layers (the governed
//! `KvCache` in `m3r-core`) consult to decide when to evict and spill;
//! the accountant itself never evicts, it only counts.
//!
//! Stats (high watermarks, eviction/spill/reload totals, cache hit rate)
//! funnel into [`Metrics`] the same way `Node::charge` funnels simulated
//! work, and surface in the trace text report next to the pool hit rate.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use crate::metrics::Metrics;

/// Which long-lived store owns the bytes being accounted.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MemClass {
    /// Kv-store cache entries (the `/cache` tree of resident sequences).
    Cache,
    /// Serialized shuffle stream payloads parked between map and reduce.
    Shuffle,
    /// Buffer-pool free-list capacity (warm but dead bytes).
    Pool,
    /// Place/node-level combine tables absorbing map output before the
    /// shuffle streams serialize it (transient within a map phase).
    Combine,
    /// Per-wave scratch arena retention (recycled pair vectors and raw-key
    /// buffers parked between waves, see [`crate::arena`]). Tracked for
    /// observability but **excluded from [`MemAccountant::live`]**: leases
    /// move these bytes onto worker threads mid-wave, so counting them
    /// toward the place total would make budget gates and watermarks
    /// depend on thread schedule and break the arena's bit-identity
    /// contract (arena on/off must not change simulated behaviour).
    Arena,
    /// Cross-job memoization entries (the `m3r-memo` reuse index): retained
    /// output partition sets and shuffle-stable map outputs keyed by job
    /// fingerprint. Budget-live like the cache — reuse must never blow the
    /// memory budget — but evicted by *dropping* (recomputation is the
    /// reload path), never by spilling.
    Memo,
}

impl MemClass {
    const COUNT: usize = 6;

    fn index(self) -> usize {
        match self {
            MemClass::Cache => 0,
            MemClass::Shuffle => 1,
            MemClass::Pool => 2,
            MemClass::Combine => 3,
            MemClass::Arena => 4,
            MemClass::Memo => 5,
        }
    }

    fn name(self) -> &'static str {
        match self {
            MemClass::Cache => "cache",
            MemClass::Shuffle => "shuffle",
            MemClass::Pool => "pool",
            MemClass::Combine => "combine",
            MemClass::Arena => "arena",
            MemClass::Memo => "memo",
        }
    }

    fn all() -> [MemClass; Self::COUNT] {
        [
            MemClass::Cache,
            MemClass::Shuffle,
            MemClass::Pool,
            MemClass::Combine,
            MemClass::Arena,
            MemClass::Memo,
        ]
    }
}

/// What a governed cache does when a place exceeds its budget.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum OomMode {
    /// Evict entries to SimDfs and reload them lazily: graceful
    /// degradation toward Hadoop-like disk behaviour (the default).
    #[default]
    Spill,
    /// Error out instead of spilling — the paper's "the job family must
    /// fit in memory" contract, reproduced literally.
    FailFast,
}

/// Per-place byte tallies and lifetime stats.
#[derive(Debug, Default)]
struct PlaceMem {
    /// Live bytes per [`MemClass`].
    classes: [AtomicU64; MemClass::COUNT],
    /// Highest total live bytes ever observed at this place.
    high_watermark: AtomicU64,
    /// Highest [`MemClass::Combine`] bytes ever observed at this place —
    /// the peak footprint of place-level combine tables.
    combine_high_watermark: AtomicU64,
    /// Cache entries evicted at this place.
    evictions: AtomicU64,
    /// Bytes spilled to the DFS by evictions at this place.
    spill_bytes: AtomicU64,
    /// Bytes reloaded from the DFS by lazy cache faults at this place.
    reload_bytes: AtomicU64,
}

impl PlaceMem {
    /// Budget-relevant live bytes: every class except [`MemClass::Arena`]
    /// (see its doc comment — arena retention is observability-only).
    fn live(&self) -> u64 {
        self.classes
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != MemClass::Arena.index())
            .map(|(_, c)| c.load(Ordering::Relaxed))
            .sum()
    }
}

#[derive(Debug)]
struct MemInner {
    places: Vec<PlaceMem>,
    /// Per-place byte budget; `u64::MAX` means unlimited (the default).
    budget: AtomicU64,
    /// True = [`OomMode::FailFast`].
    fail_fast: AtomicBool,
    /// Governed-cache lookups served from a resident entry.
    cache_hits: AtomicU64,
    /// Governed-cache lookups that missed (absent, type or length
    /// mismatch). Reload faults count as hits: the entry was present.
    cache_misses: AtomicU64,
    metrics: Option<Metrics>,
}

/// Shared per-place memory accountant. `Clone` is shallow; an engine, its
/// cache and its buffer pools all hold handles onto the same tallies.
#[derive(Clone, Debug)]
pub struct MemAccountant {
    inner: Arc<MemInner>,
}

impl MemAccountant {
    /// Accountant for `places` places with an infinite budget and no
    /// metrics funnel (unit tests).
    pub fn new(places: usize) -> Self {
        Self::build(places, None)
    }

    /// Accountant whose stats funnel into `metrics` (the form every
    /// [`crate::Cluster`] constructs).
    pub fn with_metrics(places: usize, metrics: Metrics) -> Self {
        Self::build(places, Some(metrics))
    }

    fn build(places: usize, metrics: Option<Metrics>) -> Self {
        MemAccountant {
            inner: Arc::new(MemInner {
                places: (0..places).map(|_| PlaceMem::default()).collect(),
                budget: AtomicU64::new(u64::MAX),
                fail_fast: AtomicBool::new(false),
                cache_hits: AtomicU64::new(0),
                cache_misses: AtomicU64::new(0),
                metrics,
            }),
        }
    }

    /// Number of places tracked.
    pub fn places(&self) -> usize {
        self.inner.places.len()
    }

    fn place(&self, place: usize) -> &PlaceMem {
        &self.inner.places[place]
    }

    /// Record `bytes` newly held by `class` at `place`, ratcheting the
    /// place's high watermark (and the cluster-wide watermark gauge in
    /// [`Metrics`]).
    pub fn grow(&self, place: usize, class: MemClass, bytes: u64) {
        if bytes == 0 {
            return;
        }
        let p = self.place(place);
        let class_live = p.classes[class.index()].fetch_add(bytes, Ordering::Relaxed) + bytes;
        if class == MemClass::Combine {
            p.combine_high_watermark.fetch_max(class_live, Ordering::Relaxed);
        }
        let live = p.live();
        p.high_watermark.fetch_max(live, Ordering::Relaxed);
        if let Some(m) = &self.inner.metrics {
            m.record_mem_watermark(live);
        }
    }

    /// Record `bytes` released by `class` at `place` (saturating: a
    /// shrink can never drive a tally negative).
    pub fn shrink(&self, place: usize, class: MemClass, bytes: u64) {
        if bytes == 0 {
            return;
        }
        let cell = &self.place(place).classes[class.index()];
        let _ = cell.fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
            Some(v.saturating_sub(bytes))
        });
    }

    /// Total live bytes at `place` across all classes.
    pub fn live(&self, place: usize) -> u64 {
        self.place(place).live()
    }

    /// Live bytes held by `class` at `place`.
    pub fn live_class(&self, place: usize, class: MemClass) -> u64 {
        self.place(place).classes[class.index()].load(Ordering::Relaxed)
    }

    /// Highest total live bytes ever observed at `place` (since the last
    /// [`MemAccountant::reset_stats`]).
    pub fn high_watermark(&self, place: usize) -> u64 {
        self.place(place).high_watermark.load(Ordering::Relaxed)
    }

    /// Highest [`MemClass::Combine`] bytes ever observed at `place` — the
    /// peak footprint of place-level combine tables (since the last
    /// [`MemAccountant::reset_stats`]).
    pub fn combine_high_watermark(&self, place: usize) -> u64 {
        self.place(place)
            .combine_high_watermark
            .load(Ordering::Relaxed)
    }

    /// Set the per-place byte budget; `None` means unlimited.
    pub fn set_budget(&self, budget: Option<u64>) {
        self.inner
            .budget
            .store(budget.unwrap_or(u64::MAX), Ordering::Relaxed);
    }

    /// The per-place byte budget, or `None` when unlimited.
    pub fn budget(&self) -> Option<u64> {
        match self.inner.budget.load(Ordering::Relaxed) {
            u64::MAX => None,
            b => Some(b),
        }
    }

    /// Choose what governed caches do on budget overflow.
    pub fn set_oom_mode(&self, mode: OomMode) {
        self.inner
            .fail_fast
            .store(mode == OomMode::FailFast, Ordering::Relaxed);
    }

    /// The configured budget-overflow behaviour.
    pub fn oom_mode(&self) -> OomMode {
        if self.inner.fail_fast.load(Ordering::Relaxed) {
            OomMode::FailFast
        } else {
            OomMode::Spill
        }
    }

    /// Record one eviction at `place` that spilled `spilled_bytes` to the
    /// DFS (0 when the entry was dropped without a spill).
    pub fn note_eviction(&self, place: usize, spilled_bytes: u64) {
        let p = self.place(place);
        p.evictions.fetch_add(1, Ordering::Relaxed);
        p.spill_bytes.fetch_add(spilled_bytes, Ordering::Relaxed);
        if let Some(m) = &self.inner.metrics {
            m.record_cache_eviction(spilled_bytes);
        }
    }

    /// Record `bytes` lazily reloaded from the DFS at `place`.
    pub fn note_reload(&self, place: usize, bytes: u64) {
        self.place(place).reload_bytes.fetch_add(bytes, Ordering::Relaxed);
        if let Some(m) = &self.inner.metrics {
            m.record_cache_reload(bytes);
        }
    }

    /// Count one governed-cache lookup (hit = served, resident or via
    /// reload; miss = absent or shape mismatch).
    pub fn note_cache_access(&self, hit: bool) {
        let cell = if hit {
            &self.inner.cache_hits
        } else {
            &self.inner.cache_misses
        };
        cell.fetch_add(1, Ordering::Relaxed);
    }

    /// Evictions recorded at `place`.
    pub fn evictions(&self, place: usize) -> u64 {
        self.place(place).evictions.load(Ordering::Relaxed)
    }

    /// Bytes spilled at `place`.
    pub fn spill_bytes(&self, place: usize) -> u64 {
        self.place(place).spill_bytes.load(Ordering::Relaxed)
    }

    /// Bytes reloaded at `place`.
    pub fn reload_bytes(&self, place: usize) -> u64 {
        self.place(place).reload_bytes.load(Ordering::Relaxed)
    }

    /// Governed-cache (hits, misses) so far.
    pub fn cache_accesses(&self) -> (u64, u64) {
        (
            self.inner.cache_hits.load(Ordering::Relaxed),
            self.inner.cache_misses.load(Ordering::Relaxed),
        )
    }

    /// Zero the *stats* — watermarks, eviction/spill/reload totals, hit
    /// counts — re-seeding each watermark to the place's current live
    /// total. Live byte tallies, the budget and the OOM mode survive: the
    /// cache they describe survives `Cluster::reset` too, and forgetting
    /// its bytes would let a reset launder a busted budget.
    pub fn reset_stats(&self) {
        for p in &self.inner.places {
            p.high_watermark.store(p.live(), Ordering::Relaxed);
            p.combine_high_watermark.store(
                p.classes[MemClass::Combine.index()].load(Ordering::Relaxed),
                Ordering::Relaxed,
            );
            p.evictions.store(0, Ordering::Relaxed);
            p.spill_bytes.store(0, Ordering::Relaxed);
            p.reload_bytes.store(0, Ordering::Relaxed);
        }
        self.inner.cache_hits.store(0, Ordering::Relaxed);
        self.inner.cache_misses.store(0, Ordering::Relaxed);
    }

    /// Publish the governor's state into `registry` as pull-based gauges:
    /// per-place live bytes by class, high watermarks, eviction/spill/
    /// reload totals, and the cluster-wide governed-cache hit/miss tally.
    /// Callbacks capture a clone of the accountant, so the registry always
    /// exports the *current* state; registering is idempotent (gauge
    /// re-registration overwrites).
    pub fn publish_telemetry(&self, registry: &crate::telemetry::TelemetryRegistry) {
        use std::sync::Arc;
        let per_place = |name: &str, help: &str, read: fn(&MemAccountant, usize) -> u64| {
            let me = self.clone();
            registry.gauge(
                name,
                help,
                Arc::new(move || {
                    (0..me.places())
                        .map(|p| (format!("place=\"{p}\""), read(&me, p) as f64))
                        .collect()
                }),
            );
        };
        let me = self.clone();
        registry.gauge(
            "m3r_mem_live_bytes",
            "live accounted bytes per place and memory class",
            Arc::new(move || {
                let mut samples = Vec::with_capacity(me.places() * MemClass::COUNT);
                for p in 0..me.places() {
                    for class in MemClass::all() {
                        samples.push((
                            format!("place=\"{p}\",class=\"{}\"", class.name()),
                            me.live_class(p, class) as f64,
                        ));
                    }
                }
                samples
            }),
        );
        per_place(
            "m3r_mem_high_watermark_bytes",
            "highest budget-relevant live bytes ever observed per place",
            MemAccountant::high_watermark,
        );
        per_place(
            "m3r_mem_combine_high_watermark_bytes",
            "peak combine-table bytes per place",
            MemAccountant::combine_high_watermark,
        );
        per_place(
            "m3r_mem_evictions_total",
            "cache entries evicted per place",
            MemAccountant::evictions,
        );
        per_place(
            "m3r_mem_spill_bytes_total",
            "bytes spilled to the DFS by evictions per place",
            MemAccountant::spill_bytes,
        );
        per_place(
            "m3r_mem_reload_bytes_total",
            "bytes faulted back in from spill files per place",
            MemAccountant::reload_bytes,
        );
        let me = self.clone();
        registry.gauge(
            "m3r_cache_requests_total",
            "governed-cache lookups by outcome",
            Arc::new(move || {
                let (hits, misses) = me.cache_accesses();
                vec![
                    ("outcome=\"hit\"".to_string(), hits as f64),
                    ("outcome=\"miss\"".to_string(), misses as f64),
                ]
            }),
        );
        let me = self.clone();
        registry.gauge(
            "m3r_mem_budget_bytes",
            "per-place byte budget (-1 = unlimited)",
            Arc::new(move || {
                vec![(
                    String::new(),
                    me.budget().map(|b| b as f64).unwrap_or(-1.0),
                )]
            }),
        );
    }

    /// Human-readable per-place memory section for the trace text report,
    /// mirroring how the buffer-pool hit rate is surfaced there.
    pub fn report_section(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        out.push_str("memory (per place):\n");
        for (id, p) in self.inner.places.iter().enumerate() {
            let _ = write!(out, "  place {id}: live=");
            for class in MemClass::all() {
                let _ = write!(
                    out,
                    "{}:{} ",
                    class.name(),
                    p.classes[class.index()].load(Ordering::Relaxed)
                );
            }
            let _ = writeln!(
                out,
                "hwm={} combine_hwm={} evictions={} spill_bytes={} reload_bytes={}",
                p.high_watermark.load(Ordering::Relaxed),
                p.combine_high_watermark.load(Ordering::Relaxed),
                p.evictions.load(Ordering::Relaxed),
                p.spill_bytes.load(Ordering::Relaxed),
                p.reload_bytes.load(Ordering::Relaxed),
            );
        }
        let (hits, misses) = self.cache_accesses();
        let requests = hits + misses;
        let hit_rate = if requests == 0 {
            0.0
        } else {
            100.0 * hits as f64 / requests as f64
        };
        let _ = writeln!(
            out,
            "  cache: hits={hits} misses={misses} hit_rate={hit_rate:.1}%"
        );
        if let Some(m) = &self.inner.metrics {
            // Pool effectiveness lives in `Metrics` but outside the
            // snapshot (PR 3); surface it here so the accountant section
            // is the one place to read memory behaviour.
            let (ph, pm) = (m.pool_hits(), m.pool_misses());
            let preq = ph + pm;
            let prate = if preq == 0 {
                0.0
            } else {
                100.0 * ph as f64 / preq as f64
            };
            let _ = writeln!(
                out,
                "  pool: hits={ph} misses={pm} hit_rate={prate:.1}%"
            );
        }
        let _ = match self.budget() {
            Some(b) => writeln!(
                out,
                "  budget: {b} bytes/place ({:?} on overflow)",
                self.oom_mode()
            ),
            None => writeln!(out, "  budget: unlimited"),
        };
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grow_shrink_and_watermark() {
        let mem = MemAccountant::new(2);
        mem.grow(0, MemClass::Cache, 100);
        mem.grow(0, MemClass::Shuffle, 50);
        assert_eq!(mem.live(0), 150);
        assert_eq!(mem.live_class(0, MemClass::Cache), 100);
        assert_eq!(mem.live(1), 0);
        assert_eq!(mem.high_watermark(0), 150);
        mem.shrink(0, MemClass::Shuffle, 50);
        assert_eq!(mem.live(0), 100);
        assert_eq!(mem.high_watermark(0), 150, "watermark is a ratchet");
        // Shrinking more than is live saturates at zero.
        mem.shrink(0, MemClass::Cache, 1 << 40);
        assert_eq!(mem.live(0), 0);
    }

    #[test]
    fn budget_and_oom_mode_roundtrip() {
        let mem = MemAccountant::new(1);
        assert_eq!(mem.budget(), None);
        assert_eq!(mem.oom_mode(), OomMode::Spill);
        mem.set_budget(Some(4096));
        mem.set_oom_mode(OomMode::FailFast);
        assert_eq!(mem.budget(), Some(4096));
        assert_eq!(mem.oom_mode(), OomMode::FailFast);
        mem.set_budget(None);
        assert_eq!(mem.budget(), None);
    }

    #[test]
    fn stats_funnel_into_metrics() {
        let m = Metrics::new();
        let mem = MemAccountant::with_metrics(1, m.clone());
        mem.grow(0, MemClass::Cache, 777);
        mem.note_eviction(0, 500);
        mem.note_reload(0, 300);
        assert_eq!(m.mem_high_watermark_bytes(), 777);
        assert_eq!(m.cache_evictions(), 1);
        assert_eq!(m.cache_spill_bytes(), 500);
        assert_eq!(m.cache_reload_bytes(), 300);
        // None of it leaks into snapshot equality.
        assert_eq!(m.snapshot(), Metrics::new().snapshot());
    }

    #[test]
    fn reset_stats_keeps_live_tallies() {
        let mem = MemAccountant::new(1);
        mem.set_budget(Some(10_000));
        mem.grow(0, MemClass::Cache, 100);
        mem.grow(0, MemClass::Cache, 100);
        mem.shrink(0, MemClass::Cache, 150);
        mem.note_eviction(0, 64);
        mem.note_cache_access(true);
        mem.reset_stats();
        assert_eq!(mem.live(0), 50, "live bytes survive reset");
        assert_eq!(mem.budget(), Some(10_000), "budget survives reset");
        assert_eq!(mem.high_watermark(0), 50, "watermark re-seeds to live");
        assert_eq!(mem.evictions(0), 0);
        assert_eq!(mem.cache_accesses(), (0, 0));
    }

    #[test]
    fn combine_watermark_ratchets_and_reseeds() {
        let mem = MemAccountant::new(1);
        mem.grow(0, MemClass::Combine, 300);
        mem.shrink(0, MemClass::Combine, 200);
        assert_eq!(mem.combine_high_watermark(0), 300, "ratchet holds");
        assert_eq!(mem.live_class(0, MemClass::Combine), 100);
        mem.reset_stats();
        assert_eq!(
            mem.combine_high_watermark(0),
            100,
            "re-seeds to live combine bytes"
        );
        assert!(mem.report_section().contains("combine_hwm=100"));
    }

    #[test]
    fn arena_bytes_are_visible_but_outside_the_budget_total() {
        let mem = MemAccountant::new(1);
        mem.grow(0, MemClass::Cache, 100);
        mem.grow(0, MemClass::Arena, 4096);
        assert_eq!(mem.live_class(0, MemClass::Arena), 4096);
        assert_eq!(mem.live(0), 100, "arena retention is not budget-live");
        assert_eq!(mem.high_watermark(0), 100);
        assert!(mem.report_section().contains("arena:4096"));
        mem.shrink(0, MemClass::Arena, 4096);
        assert_eq!(mem.live_class(0, MemClass::Arena), 0);
    }

    #[test]
    fn report_section_mentions_every_place() {
        let mem = MemAccountant::new(2);
        mem.grow(1, MemClass::Pool, 42);
        mem.note_cache_access(true);
        mem.note_cache_access(false);
        let s = mem.report_section();
        assert!(s.contains("place 0"));
        assert!(s.contains("place 1"));
        assert!(s.contains("hit_rate=50.0%"));
        assert!(s.contains("budget: unlimited"));
    }
}
