//! The cost model: prices for every operation the paper's figures measure.
//!
//! Defaults are calibrated to the paper's testbed (§6): 20 IBM LS-22 blades,
//! 2×quad-core 2.3 GHz Opteron, 16 GB RAM, Gigabit Ethernet, local disks,
//! IBM J9 JVMs. Absolute numbers need not match the paper — the simulation
//! only has to preserve *relative* costs (disk ≫ memory, remote ≫ local,
//! startup dominates small jobs) so the figures keep their shape.

/// A single simulated-time charge, in seconds, tagged with what it was for.
///
/// Charges are routed to a [`crate::Clock`] and recorded in
/// [`crate::Metrics`] so tests can assert on exactly which costs an engine
/// incurred (e.g. "M3R charged zero disk time for the second iteration").
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Charge {
    /// Reading `bytes` from a local disk.
    DiskRead {
        /// Bytes read.
        bytes: u64,
    },
    /// Writing `bytes` to a local disk.
    DiskWrite {
        /// Bytes written.
        bytes: u64,
    },
    /// Moving `bytes` across the network between two distinct nodes.
    NetTransfer {
        /// Bytes transferred.
        bytes: u64,
    },
    /// Serializing `bytes` of objects into a byte stream.
    Serialize {
        /// Serialized output bytes.
        bytes: u64,
    },
    /// Deserializing `bytes` of a byte stream back into objects.
    Deserialize {
        /// Serialized input bytes.
        bytes: u64,
    },
    /// Deep-cloning `bytes` of key/value data (M3R's defensive copy when a
    /// job does not implement `ImmutableOutput`, §4.1).
    Clone {
        /// Approximate bytes copied.
        bytes: u64,
    },
    /// Allocating `objects` fresh objects (models GC churn; used for the
    /// Fig 8 "new TextWritable()" vs "re-use TextWritable" gap).
    Alloc {
        /// Objects allocated.
        objects: u64,
    },
    /// Comparison-sorting `records` records.
    Sort {
        /// Records sorted.
        records: u64,
    },
    /// Starting one task in a fresh JVM (map or reduce attempt).
    TaskStartup,
    /// One jobtracker⇄tasktracker heartbeat/scheduling round trip.
    Heartbeat,
    /// Client-side job submission overhead (jobid allocation, staging the
    /// job configuration and code to the jobtracker's filesystem, §3.1).
    JobSubmit,
    /// Fast in-memory coordination (an X10 barrier / team operation, §5.1).
    Barrier,
    /// Real user-code compute time, in seconds, measured on the host and
    /// scaled by [`CostModel::compute_scale`].
    Compute {
        /// Measured (or modeled) CPU seconds.
        seconds: f64,
    },
}

/// Prices for the simulated cluster. All bandwidths are bytes/second and all
/// latencies are seconds of simulated time.
#[derive(Debug, Clone)]
pub struct CostModel {
    /// Sequential disk bandwidth (bytes/s). Paper-era SATA: ~80 MB/s.
    pub disk_bw: f64,
    /// Per-I/O disk seek/setup latency (s).
    pub disk_seek: f64,
    /// Point-to-point network bandwidth (bytes/s). GigE ≈ 110 MB/s payload.
    pub net_bw: f64,
    /// Per-message network latency (s).
    pub net_latency: f64,
    /// Serialization throughput (bytes/s of serialized output).
    pub ser_bw: f64,
    /// Deserialization throughput (bytes/s of serialized input).
    pub deser_bw: f64,
    /// Deep-clone (memcpy + allocate) throughput (bytes/s).
    pub clone_bw: f64,
    /// Cost per freshly allocated object (s); models the allocator plus the
    /// amortized GC pressure each short-lived object induces (the paper-era
    /// JVMs paid heavily for WordCount's per-token `Text` allocations).
    pub alloc_cost: f64,
    /// Sort cost: `sort_per_rec * n * log2(n)` seconds for n records.
    pub sort_per_rec: f64,
    /// JVM startup cost per Hadoop task attempt (s). The paper attributes
    /// "huge (10s of second) start-up cost" to the engine; per-task JVM
    /// launches are the dominant part.
    pub task_startup: f64,
    /// Jobtracker heartbeat interval (s); Hadoop schedules task waves at
    /// this granularity (the "task polling model" of §6.1).
    pub heartbeat: f64,
    /// One-time job submission overhead (s).
    pub job_submit: f64,
    /// An X10 barrier / fast coordination operation (s).
    pub barrier: f64,
    /// Multiplier applied to real measured user-compute seconds before they
    /// are added to the simulated clock. Set to 0.0 for fully deterministic
    /// unit tests; 1.0 folds real CPU time into the simulation.
    pub compute_scale: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            disk_bw: 80e6,
            disk_seek: 5e-3,
            net_bw: 110e6,
            net_latency: 100e-6,
            ser_bw: 400e6,
            deser_bw: 300e6,
            clone_bw: 1000e6,
            alloc_cost: 400e-9,
            sort_per_rec: 80e-9,
            task_startup: 1.0,
            heartbeat: 3.0,
            job_submit: 2.0,
            barrier: 500e-6,
            compute_scale: 0.0,
        }
    }
}

impl CostModel {
    /// A model with every price set to zero; useful for tests that only care
    /// about functional behaviour.
    pub fn free() -> Self {
        CostModel {
            disk_bw: f64::INFINITY,
            disk_seek: 0.0,
            net_bw: f64::INFINITY,
            net_latency: 0.0,
            ser_bw: f64::INFINITY,
            deser_bw: f64::INFINITY,
            clone_bw: f64::INFINITY,
            alloc_cost: 0.0,
            sort_per_rec: 0.0,
            task_startup: 0.0,
            heartbeat: 0.0,
            job_submit: 0.0,
            barrier: 0.0,
            compute_scale: 0.0,
        }
    }

    /// Price a [`Charge`] in seconds of simulated time.
    pub fn price(&self, charge: Charge) -> f64 {
        match charge {
            Charge::DiskRead { bytes } => self.disk_seek + bytes as f64 / self.disk_bw,
            Charge::DiskWrite { bytes } => self.disk_seek + bytes as f64 / self.disk_bw,
            Charge::NetTransfer { bytes } => self.net_latency + bytes as f64 / self.net_bw,
            Charge::Serialize { bytes } => bytes as f64 / self.ser_bw,
            Charge::Deserialize { bytes } => bytes as f64 / self.deser_bw,
            Charge::Clone { bytes } => bytes as f64 / self.clone_bw,
            Charge::Alloc { objects } => objects as f64 * self.alloc_cost,
            Charge::Sort { records } => {
                if records < 2 {
                    0.0
                } else {
                    self.sort_per_rec * records as f64 * (records as f64).log2()
                }
            }
            Charge::TaskStartup => self.task_startup,
            Charge::Heartbeat => self.heartbeat,
            Charge::JobSubmit => self.job_submit,
            Charge::Barrier => self.barrier,
            Charge::Compute { seconds } => seconds * self.compute_scale,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_prices_are_positive_and_ordered() {
        let m = CostModel::default();
        // Disk is slower than network per byte on this testbed, and both are
        // far slower than cloning memory.
        let mb = 1 << 20;
        let disk = m.price(Charge::DiskRead { bytes: mb });
        let net = m.price(Charge::NetTransfer { bytes: mb });
        let clone = m.price(Charge::Clone { bytes: mb });
        assert!(disk > net, "disk {disk} should cost more than net {net}");
        assert!(net > clone, "net {net} should cost more than clone {clone}");
        assert!(clone > 0.0);
    }

    #[test]
    fn free_model_prices_everything_at_zero() {
        let m = CostModel::free();
        for c in [
            Charge::DiskRead { bytes: 1 << 30 },
            Charge::DiskWrite { bytes: 1 << 30 },
            Charge::NetTransfer { bytes: 1 << 30 },
            Charge::Serialize { bytes: 1 << 30 },
            Charge::Deserialize { bytes: 1 << 30 },
            Charge::Clone { bytes: 1 << 30 },
            Charge::Alloc { objects: 1 << 30 },
            Charge::Sort { records: 1 << 30 },
            Charge::TaskStartup,
            Charge::Heartbeat,
            Charge::JobSubmit,
            Charge::Barrier,
            Charge::Compute { seconds: 10.0 },
        ] {
            assert_eq!(m.price(c), 0.0, "{c:?} should be free");
        }
    }

    #[test]
    fn sort_cost_is_superlinear() {
        let m = CostModel::default();
        let small = m.price(Charge::Sort { records: 1_000 });
        let big = m.price(Charge::Sort { records: 2_000 });
        assert!(big > 2.0 * small);
    }

    #[test]
    fn sort_of_zero_or_one_record_is_free() {
        let m = CostModel::default();
        assert_eq!(m.price(Charge::Sort { records: 0 }), 0.0);
        assert_eq!(m.price(Charge::Sort { records: 1 }), 0.0);
    }

    #[test]
    fn startup_dominates_small_io() {
        // The premise of the paper: for small jobs, Hadoop's startup costs
        // dwarf the actual work. 1 MB of disk I/O must cost far less than
        // one task startup under the default model.
        let m = CostModel::default();
        let io = m.price(Charge::DiskRead { bytes: 1 << 20 });
        assert!(m.price(Charge::TaskStartup) > 10.0 * io);
    }

    #[test]
    fn compute_scale_zero_silences_compute() {
        let m = CostModel::default();
        assert_eq!(m.price(Charge::Compute { seconds: 42.0 }), 0.0);
        let mut m2 = m.clone();
        m2.compute_scale = 0.5;
        assert_eq!(m2.price(Charge::Compute { seconds: 42.0 }), 21.0);
    }
}
