//! The caching filesystem wrapper (paper §3.2.1, §4.2.3–4.2.4).
//!
//! "M3R alters Hadoop's FileSystem class so that it transparently sends
//! calls to operations such as rename, delete, and getFileStatus to both
//! the cache and the underlying file system." This wrapper is that altered
//! class: metadata queries merge the cache (so *temporary* outputs that
//! were never written to disk are still visible to the next job's input
//! format), destructive operations keep the cache coherent, and the
//! `CacheFS` extension exposes a raw-cache view whose operations touch
//! *only* the cache.
//!
//! Byte-level reads (`open`) go to the underlying filesystem: "since the
//! file API is based on byte buffers, and the cache stores key-value pairs,
//! these calls could not be trapped automatically" (§6.4 footnote). Typed
//! access to cached sequences is [`CachingFs::cache_record_reader`].

use std::sync::Arc;

use hmr_api::error::{HmrError, Result};
use hmr_api::extensions::CacheFsExt;
use hmr_api::fs::{FileStatus, FileSystem, FsReader, FsWriter, HPath};
use hmr_api::io::RecordReader;

use crate::cache::KvCache;

/// A `FileSystem` that merges an underlying filesystem with M3R's cache.
#[derive(Clone)]
pub struct CachingFs {
    under: Arc<dyn FileSystem>,
    cache: KvCache,
}

impl CachingFs {
    /// Wrap `under` with `cache`.
    pub fn new(under: Arc<dyn FileSystem>, cache: KvCache) -> Self {
        CachingFs { under, cache }
    }

    /// The cache facade.
    pub fn cache(&self) -> &KvCache {
        &self.cache
    }

    /// The wrapped filesystem.
    pub fn underlying(&self) -> &Arc<dyn FileSystem> {
        &self.under
    }

    /// §4.2.4 `getCacheRecordReader`: iterate the cached key/value sequence
    /// of `path` without touching the underlying filesystem. `None` when
    /// the path is not cached (or cached with different types).
    pub fn cache_record_reader<K, V>(&self, path: &HPath) -> Option<Box<dyn RecordReader<K, V>>>
    where
        K: Clone + Send + Sync + 'static,
        V: Clone + Send + Sync + 'static,
    {
        let hit = self.cache.get_seq::<K, V>(path, None)?;
        Some(Box::new(CachedSeqReader { hit: hit.seq, pos: 0 }))
    }

    fn synth_status(&self, path: &HPath) -> Option<FileStatus> {
        if self.cache.is_dir(path) {
            return Some(FileStatus {
                path: path.clone(),
                is_dir: true,
                len: 0,
                block_size: u64::MAX,
            });
        }
        self.cache.status(path).map(|m| FileStatus {
            path: path.clone(),
            is_dir: false,
            len: m.len,
            block_size: u64::MAX,
        })
    }
}

struct CachedSeqReader<K, V> {
    hit: Arc<crate::cache::CachedSeq<K, V>>,
    pos: usize,
}

impl<K, V> RecordReader<K, V> for CachedSeqReader<K, V>
where
    K: Clone + Send + Sync + 'static,
    V: Clone + Send + Sync + 'static,
{
    fn next(&mut self) -> Result<Option<(K, V)>> {
        match self.hit.pairs.get(self.pos) {
            Some((k, v)) => {
                self.pos += 1;
                Ok(Some(((**k).clone(), (**v).clone())))
            }
            None => Ok(None),
        }
    }
}

impl FileSystem for CachingFs {
    fn create(&self, path: &HPath) -> Result<Box<dyn FsWriter>> {
        // A fresh byte-level write invalidates any cached entry.
        self.cache.delete(path);
        self.under.create(path)
    }

    fn open(&self, path: &HPath) -> Result<Box<dyn FsReader>> {
        self.under.open(path)
    }

    fn delete(&self, path: &HPath, recursive: bool) -> Result<bool> {
        let cached = self.cache.delete(path);
        let under = self.under.delete(path, recursive)?;
        Ok(cached || under)
    }

    fn rename(&self, src: &HPath, dst: &HPath) -> Result<()> {
        let cache_moved = self.cache.rename(src, dst).is_ok();
        match self.under.rename(src, dst) {
            Ok(()) => Ok(()),
            // A temp output exists only in the cache; moving it there is
            // enough.
            Err(HmrError::NotFound(_)) if cache_moved => Ok(()),
            Err(e) => Err(e),
        }
    }

    fn mkdirs(&self, path: &HPath) -> Result<()> {
        self.under.mkdirs(path)
    }

    fn get_file_status(&self, path: &HPath) -> Result<FileStatus> {
        match self.under.get_file_status(path) {
            Ok(st) => Ok(st),
            Err(HmrError::NotFound(_)) => self
                .synth_status(path)
                .ok_or_else(|| HmrError::NotFound(path.to_string())),
            Err(e) => Err(e),
        }
    }

    fn list_status(&self, path: &HPath) -> Result<Vec<FileStatus>> {
        let mut out = match self.under.list_status(path) {
            Ok(v) => v,
            Err(HmrError::NotFound(_)) => Vec::new(),

            Err(e) => return Err(e),
        };
        let mut seen: std::collections::BTreeSet<HPath> =
            out.iter().map(|s| s.path.clone()).collect();
        if out.is_empty() && !self.under.exists(path) && !self.cache.contains(path) {
            return Err(HmrError::NotFound(path.to_string()));
        }
        for (p, m) in self.cache.list(path) {
            if seen.insert(p.clone()) {
                out.push(FileStatus {
                    path: p,
                    is_dir: false,
                    len: m.len,
                    block_size: u64::MAX,
                });
            }
        }
        // A cached file queried directly.
        if out.is_empty() {
            if let Some(st) = self.synth_status(path) {
                if !st.is_dir {
                    out.push(st);
                }
            }
        }
        out.sort_by(|a, b| a.path.cmp(&b.path));
        Ok(out)
    }

    fn block_locations(&self, path: &HPath, offset: u64, len: u64) -> Result<Vec<Vec<usize>>> {
        match self.under.block_locations(path, offset, len) {
            Ok(locs) if !locs.is_empty() => Ok(locs),
            _ => Ok(self
                .cache
                .place_of(path)
                .map(|p| vec![vec![p]])
                .unwrap_or_default()),
        }
    }

    fn content_version(&self, path: &HPath) -> Option<u64> {
        // Versions are a property of the durable bytes: cache-only entries
        // (temporary outputs that never reach the DFS) stay unversioned, so
        // memoization never fingerprints content that could vanish with the
        // cache. Every cache mutation goes through `create`/`delete` on the
        // underlying store first, so delegation cannot go stale.
        self.under.content_version(path)
    }
}

impl CacheFsExt for CachingFs {
    fn raw_cache(&self) -> Arc<dyn FileSystem> {
        Arc::new(RawCacheFs {
            cache: self.cache.clone(),
        })
    }
}

/// §4.2.3 `getRawCache`: a synthetic filesystem whose operations touch only
/// the cache. Deleting here removes a cached sequence "without affecting
/// the underlying file system".
pub struct RawCacheFs {
    cache: KvCache,
}

impl FileSystem for RawCacheFs {
    fn create(&self, _path: &HPath) -> Result<Box<dyn FsWriter>> {
        Err(HmrError::Unsupported(
            "raw cache holds key/value sequences, not bytes".into(),
        ))
    }
    fn open(&self, _path: &HPath) -> Result<Box<dyn FsReader>> {
        Err(HmrError::Unsupported(
            "raw cache holds key/value sequences, not bytes".into(),
        ))
    }
    fn delete(&self, path: &HPath, _recursive: bool) -> Result<bool> {
        Ok(self.cache.delete(path))
    }
    fn rename(&self, src: &HPath, dst: &HPath) -> Result<()> {
        self.cache
            .rename(src, dst)
            .map_err(|e| HmrError::Io(e.to_string()))
    }
    fn mkdirs(&self, _path: &HPath) -> Result<()> {
        Ok(())
    }
    fn get_file_status(&self, path: &HPath) -> Result<FileStatus> {
        if self.cache.is_dir(path) {
            return Ok(FileStatus {
                path: path.clone(),
                is_dir: true,
                len: 0,
                block_size: u64::MAX,
            });
        }
        self.cache
            .status(path)
            .map(|m| FileStatus {
                path: path.clone(),
                is_dir: false,
                len: m.len,
                block_size: u64::MAX,
            })
            .ok_or_else(|| HmrError::NotFound(path.to_string()))
    }
    fn list_status(&self, path: &HPath) -> Result<Vec<FileStatus>> {
        if !self.cache.contains(path) {
            return Err(HmrError::NotFound(path.to_string()));
        }
        Ok(self
            .cache
            .list(path)
            .into_iter()
            .map(|(p, m)| FileStatus {
                path: p,
                is_dir: false,
                len: m.len,
                block_size: u64::MAX,
            })
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::CachedSeq;
    use hmr_api::fs::{write_file, MemFs};
    use hmr_api::writable::{IntWritable, Text};

    fn seq(n: i32) -> Arc<CachedSeq<IntWritable, Text>> {
        Arc::new(CachedSeq::new(
            (0..n)
                .map(|i| (Arc::new(IntWritable(i)), Arc::new(Text::from("x"))))
                .collect(),
        ))
    }

    fn setup() -> CachingFs {
        CachingFs::new(Arc::new(MemFs::new()), KvCache::new(4))
    }

    #[test]
    fn cached_temp_files_are_visible_in_listings() {
        let fs = setup();
        // A temp output exists only in the cache...
        fs.cache()
            .put_seq(1, &HPath::new("/out/temp_v/part-00000"), seq(4), 64)
            .unwrap();
        // ...but the next job's input format can stat and list it.
        let st = fs.get_file_status(&HPath::new("/out/temp_v/part-00000")).unwrap();
        assert_eq!(st.len, 64);
        let ls = fs.list_status(&HPath::new("/out/temp_v")).unwrap();
        assert_eq!(ls.len(), 1);
        // And locate it at its caching place.
        assert_eq!(
            fs.block_locations(&HPath::new("/out/temp_v/part-00000"), 0, 64)
                .unwrap(),
            vec![vec![1]]
        );
    }

    #[test]
    fn listings_merge_disk_and_cache() {
        let fs = setup();
        write_file(&fs, &HPath::new("/d/on_disk"), b"bytes").unwrap();
        fs.cache().put_seq(0, &HPath::new("/d/in_cache"), seq(1), 9).unwrap();
        let names: Vec<String> = fs
            .list_status(&HPath::new("/d"))
            .unwrap()
            .iter()
            .map(|s| s.path.to_string())
            .collect();
        assert_eq!(names, vec!["/d/in_cache".to_string(), "/d/on_disk".to_string()]);
    }

    #[test]
    fn delete_hits_both_cache_and_disk() {
        let fs = setup();
        write_file(&fs, &HPath::new("/f"), b"bytes").unwrap();
        fs.cache().put_seq(0, &HPath::new("/f"), seq(1), 5).unwrap();
        assert!(fs.delete(&HPath::new("/f"), false).unwrap());
        assert!(!fs.cache().contains(&HPath::new("/f")), "cache kept coherent");
        assert!(!fs.underlying().exists(&HPath::new("/f")));
    }

    #[test]
    fn raw_cache_delete_leaves_disk_alone() {
        let fs = setup();
        write_file(&fs, &HPath::new("/f"), b"bytes").unwrap();
        fs.cache().put_seq(0, &HPath::new("/f"), seq(1), 5).unwrap();
        let raw = fs.raw_cache();
        assert!(raw.delete(&HPath::new("/f"), false).unwrap());
        assert!(!fs.cache().contains(&HPath::new("/f")));
        assert!(
            fs.underlying().exists(&HPath::new("/f")),
            "underlying file untouched by raw-cache delete"
        );
        assert!(!fs.is_cached(&HPath::new("/f")));
    }

    #[test]
    fn rename_of_temp_output_moves_cache_only() {
        let fs = setup();
        fs.cache().put_seq(2, &HPath::new("/out/temp_x"), seq(1), 5).unwrap();
        fs.rename(&HPath::new("/out/temp_x"), &HPath::new("/out/final"))
            .unwrap();
        assert!(fs.cache().contains(&HPath::new("/out/final")));
        assert!(!fs.cache().contains(&HPath::new("/out/temp_x")));
    }

    #[test]
    fn cache_record_reader_replays_pairs() {
        let fs = setup();
        fs.cache().put_seq(0, &HPath::new("/f"), seq(3), 5).unwrap();
        let mut r = fs
            .cache_record_reader::<IntWritable, Text>(&HPath::new("/f"))
            .unwrap();
        let mut n = 0;
        while let Some((k, _)) = r.next().unwrap() {
            assert_eq!(k.0, n);
            n += 1;
        }
        assert_eq!(n, 3);
        // Missing or differently-typed entries yield None.
        assert!(fs
            .cache_record_reader::<Text, Text>(&HPath::new("/f"))
            .is_none());
    }

    #[test]
    fn byte_create_invalidates_cache_entry() {
        let fs = setup();
        fs.cache().put_seq(0, &HPath::new("/f"), seq(1), 5).unwrap();
        write_file(&fs, &HPath::new("/f"), b"new bytes").unwrap();
        assert!(!fs.cache().contains(&HPath::new("/f")), "stale entry dropped");
    }

    #[test]
    fn missing_everywhere_is_not_found() {
        let fs = setup();
        assert!(matches!(
            fs.get_file_status(&HPath::new("/nope")),
            Err(HmrError::NotFound(_))
        ));
        assert!(matches!(
            fs.list_status(&HPath::new("/nope")),
            Err(HmrError::NotFound(_))
        ));
    }
}
