//! The M3R engine (paper §3.2, §5): an in-memory implementation of the
//! Hadoop MapReduce APIs on long-lived places.
//!
//! One engine instance owns a fixed family of places (x10rt worker
//! threads, one per simulated node, each with `worker_threads` task slots —
//! the paper runs one process per host with 8 worker threads) and runs
//! *every* job of a job sequence on them:
//!
//! * no jobtracker, no heartbeats, no per-task JVMs — coordination is
//!   X10-style barriers costing fractions of a millisecond;
//! * inputs and outputs are cached in the distributed [`crate::cache`]
//!   keyed by file name; a job whose input was produced (or read) by an
//!   earlier job gets it from the heap with zero I/O;
//! * the shuffle is in memory: local pairs move by pointer (aliased under
//!   `ImmutableOutput`, defensively cloned otherwise), remote pairs travel
//!   in de-duplicating serialized streams, one per place pair;
//! * partition stability: partition *p* always reduces at place
//!   `p % places`, so pipelines using a consistent partitioner never move
//!   stable data (§3.2.2.2).

use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use bytes::Bytes;
use parking_lot::Mutex;

use hmr_api::comparator::{ingest_reduce_groups, SortTuning};
use hmr_api::conf::JobConf;
use hmr_api::counters::{task_counter, Counters, TaskContext};
use hmr_api::distcache::DistCache;
use hmr_api::error::{HmrError, Result};
use hmr_api::fs::{FileSystem, HPath};
use hmr_api::io::{part_file_name, InputSplit, OutputFormat};
use hmr_api::job::{Engine, JobDef, JobResult, LaneEngine};
use hmr_api::writable::{write_vu64, Writable};
use kvstore::policy::PolicyKind;
use simgrid::cost::Charge;
use simgrid::trace::{self, Phase};
use simgrid::{Arena, BufPool, Cluster, Meter, OomMode};
use x10rt::serialize::DedupMode;
use x10rt::World;

use crate::cache::{CachedSeq, KvCache};
use crate::cachefs::CachingFs;
use crate::shuffle::{decode_stream, CombineTable, MapOutputBuffer, ShuffleStream};
use crate::stability::PlaceMap;

/// The M3R counter group for engine-specific statistics.
pub const M3R_COUNTER_GROUP: &str = "m3r";

/// Engine configuration. The defaults are the paper's (§6): one place per
/// host, 8 worker threads, full de-duplication, partition stability and the
/// input/output cache on. The `false`/`Off` settings exist for the ablation
/// benches DESIGN.md calls out.
#[derive(Clone, Debug)]
pub struct M3ROptions {
    /// Concurrent map/reduce tasks per place.
    pub worker_threads: usize,
    /// Shuffle de-duplication mode (§3.2.2.3, §6.3).
    pub dedup: DedupMode,
    /// The partition-stability guarantee (§3.2.2.2); disabling simulates a
    /// Hadoop-like arbitrary partition→host assignment.
    pub partition_stability: bool,
    /// The input/output key/value cache (§3.2.1).
    pub input_cache: bool,
    /// Execute each wave's tasks on real OS threads (a scoped pool of up to
    /// `worker_threads` threads per place) instead of sequentially on the
    /// place thread. Affects wall-clock only: simulated seconds, outputs
    /// and counters are bit-identical either way (tasks bill per-task
    /// scratch clocks and all order-sensitive work — shuffle-stream
    /// serialization — happens after the wave joins, in task order). Under
    /// a *finite* memory budget waves always run sequentially: eviction
    /// order must follow task order, never the thread schedule.
    pub real_parallelism: bool,
    /// Draw shuffle-stream buffers from a per-place [`BufPool`] that
    /// persists across waves and jobs (the long-lived-place buffer reuse of
    /// §3.2.2/§5). Wall-clock only: stream bytes, charges and outputs are
    /// bit-identical with the pool off.
    pub buffer_pool: bool,
    /// Memory governance (`m3r-mem`): `Some` (the default) builds the
    /// kv-cache governed by the cluster accountant's per-place budget —
    /// with the default infinite budget this is behaviourally identical
    /// to `None` (asserted bit-for-bit by `tests/memory.rs`), while a
    /// finite budget makes the cache evict-and-spill (or fail fast) as
    /// configured. `None` is the ungoverned pre-subsystem baseline.
    pub memory: Option<MemoryOptions>,
    /// Opt-in place-level shared combining (ROADMAP item 3): merge equal
    /// keys across all map tasks of the place through the job's combiner
    /// *before* shuffle-stream serialization, via a per-destination
    /// [`crate::shuffle::CombineTable`]. Requires an associative and
    /// commutative combiner (see `hmr_api::conf::PLACE_COMBINE`, which can
    /// also enable this per job); jobs without a combiner are unaffected.
    /// Off (the default) is bit-identical to pre-combine behaviour; on, a
    /// run is bit-identical serial vs parallel, and under a finite budget
    /// an over-budget table drains early and degrades to plain streaming.
    pub place_combine: bool,
    /// Hash-grouped reduce ingest (ISSUE 8): natural-order reduces build
    /// their key groups through a raw-key hash table that drains in
    /// ascending key order instead of a full sort. Wall-clock only —
    /// outputs, counters and simulated seconds are bit-identical with the
    /// flag off (the `Charge::Sort` bill is per record either way). Jobs
    /// with custom comparators always take the sort path; a per-job
    /// `m3r.reduce.hash.group` conf knob can also force it off.
    pub hash_group_ingest: bool,
    /// Arena-per-wave allocation (ISSUE 8): reduce/combine scratch (pair
    /// vectors, raw-key buffers, permutations) is leased from a per-place
    /// [`Arena`] and recycled at wave end instead of round-tripping the
    /// global allocator. Wall-clock only; retained bytes are accounted to
    /// [`simgrid::MemClass::Arena`], which budgets deliberately ignore.
    pub arena: bool,
    /// ReStore-style cross-job result memoization (`m3r-memo`, ISSUE 10):
    /// jobs that declare a `memo_identity` record their retained outputs
    /// (and shuffle-stable reduce inputs) in the engine's [`m3r_memo::ReuseIndex`];
    /// a fingerprint-identical resubmission replays retained bytes instead
    /// of running — ~0 simulated seconds, no map/shuffle spans — and a
    /// map-prefix match (same map pipeline, different reducer) replays only
    /// the reduce side. Off (the default) is bit-identical to the
    /// non-memoized engine; the per-job `m3r.memo.enable` conf knob also
    /// enables it. Cold runs with memoization on stay sim-bit-identical
    /// under the default infinite budget (recording is unmetered); under a
    /// *finite* budget retained entries are budget-live
    /// ([`simgrid::MemClass::Memo`]) and may shift cache-eviction timing.
    pub memoize: bool,
}

/// How the governed cache behaves under a per-place memory budget. The
/// budget itself lives on the cluster's [`simgrid::MemAccountant`] so the
/// trace/report layers can read it; these options seed it at engine
/// construction.
#[derive(Clone, Copy, Debug, Default)]
pub struct MemoryOptions {
    /// Per-place byte budget; `None` (default) is unlimited.
    pub budget_bytes_per_place: Option<u64>,
    /// Victim selection under pressure.
    pub policy: PolicyKind,
    /// Spill gracefully (default) or reproduce the paper's strict
    /// must-fit-in-memory contract.
    pub oom: OomMode,
}

impl Default for M3ROptions {
    fn default() -> Self {
        M3ROptions {
            worker_threads: 8,
            dedup: DedupMode::Full,
            partition_stability: true,
            input_cache: true,
            real_parallelism: true,
            buffer_pool: true,
            memory: Some(MemoryOptions::default()),
            place_combine: false,
            hash_group_ingest: true,
            arena: true,
            memoize: false,
        }
    }
}

/// The M3R engine: a fixed set of places executing Hadoop jobs in memory.
pub struct M3REngine {
    world: Arc<World>,
    cluster: Cluster,
    fs: Arc<CachingFs>,
    opts: M3ROptions,
    /// Monotonic job ordinal; atomic so concurrent lane submissions (the
    /// multi-tenant server) can allocate without `&mut self`.
    job_seq: AtomicU64,
    /// Distributed-cache bytes survive across jobs in the long-lived
    /// places (nothing in M3R restarts between jobs).
    dist_memo: Mutex<HashMap<HPath, Bytes>>,
    /// One buffer pool per place, persisted across jobs — the shuffle
    /// streams of job *n+1* reuse the grown buffers of job *n*.
    pools: Vec<Arc<BufPool>>,
    /// One scratch arena per place, persisted across jobs like the pools:
    /// wave *n+1* leases the pair vectors wave *n* grew.
    arenas: Vec<Arc<Arena>>,
    /// The cross-job reuse index (`m3r-memo`): retained whole-job outputs
    /// and map-phase partition sets, keyed by fingerprint. Long-lived like
    /// everything else on the places; consulted only for jobs that pass
    /// [`M3REngine::memo_basis`].
    memo: Arc<m3r_memo::ReuseIndex>,
}

impl M3REngine {
    /// An engine over `cluster` wrapping `fs` with the M3R cache; one place
    /// per node, default options.
    pub fn new(cluster: Cluster, fs: Arc<dyn FileSystem>) -> Self {
        M3REngine::with_options(cluster, fs, M3ROptions::default())
    }

    /// An engine with explicit options.
    pub fn with_options(cluster: Cluster, fs: Arc<dyn FileSystem>, opts: M3ROptions) -> Self {
        assert!(opts.worker_threads >= 1);
        let places = cluster.len();
        let cache = match &opts.memory {
            Some(m) => {
                let mem = cluster.mem().clone();
                mem.set_budget(m.budget_bytes_per_place);
                mem.set_oom_mode(m.oom);
                // Spills go to the *raw* filesystem: a `CachingFs::create`
                // would re-enter the cache to invalidate the path mid-spill.
                KvCache::governed(places, mem, Arc::clone(&fs), m.policy)
            }
            None => KvCache::new(places),
        };
        // The cache's governor gauges are pull-based callbacks: registering
        // them here is free at runtime and makes the cluster's telemetry
        // registry answer for per-tenant residency from engine birth.
        cache.publish_telemetry(cluster.telemetry());
        let pools = (0..places)
            .map(|place| {
                Arc::new(match &opts.memory {
                    Some(_) => BufPool::with_accounting(
                        cluster.metrics().clone(),
                        cluster.mem().clone(),
                        place,
                    ),
                    None => BufPool::with_metrics(cluster.metrics().clone()),
                })
            })
            .collect();
        let arenas = (0..places)
            .map(|place| {
                Arc::new(match &opts.memory {
                    Some(_) => Arena::with_accounting(cluster.mem().clone(), place),
                    None => Arena::new(),
                })
            })
            .collect();
        // The reuse index shares the cluster accountant when the engine is
        // governed: retained results are budget-live (`MemClass::Memo`) and
        // dropped — never spilled — under pressure.
        let memo = Arc::new(match &opts.memory {
            Some(_) => m3r_memo::ReuseIndex::governed(places, cluster.mem().clone()),
            None => m3r_memo::ReuseIndex::new(places),
        });
        memo.publish_telemetry(cluster.telemetry());
        M3REngine {
            world: Arc::new(World::new(places)),
            fs: Arc::new(CachingFs::new(fs, cache)),
            cluster,
            opts,
            job_seq: AtomicU64::new(0),
            dist_memo: Mutex::new(HashMap::new()),
            pools,
            arenas,
            memo,
        }
    }

    /// The per-place shuffle buffer pools (test/bench introspection).
    pub fn buffer_pools(&self) -> &[Arc<BufPool>] {
        &self.pools
    }

    /// The per-place scratch arenas (test/bench introspection).
    pub fn arenas(&self) -> &[Arc<Arena>] {
        &self.arenas
    }

    /// The caching filesystem view jobs should use (also exposes the
    /// `CacheFS` extension, §4.2.3).
    pub fn caching_fs(&self) -> &Arc<CachingFs> {
        &self.fs
    }

    /// The key/value cache.
    pub fn cache(&self) -> &KvCache {
        self.fs.cache()
    }

    /// The simulated cluster.
    pub fn cluster(&self) -> &Cluster {
        &self.cluster
    }

    /// Number of places.
    pub fn num_places(&self) -> usize {
        self.cluster.len()
    }

    /// Engine options in force.
    pub fn options(&self) -> &M3ROptions {
        &self.opts
    }

    /// The cross-job reuse index (test/bench/report introspection).
    pub fn memo(&self) -> &Arc<m3r_memo::ReuseIndex> {
        &self.memo
    }

    /// The memo eligibility gate: `Some(basis)` iff this job can
    /// participate in cross-job memoization. Requires memoization enabled
    /// (engine option or per-job conf), a declared compute identity, a real
    /// reduce phase, a durable non-temp output directory, and a content
    /// version for every input and cache file (`gather` returns `None`
    /// otherwise). Unmetered — version reads are namenode metadata and this
    /// runs outside any phase meter.
    fn memo_basis<J: JobDef>(&self, job: &J, conf: &JobConf) -> Option<m3r_memo::FingerprintBasis> {
        if !(self.opts.memoize || conf.memo_enable()) {
            return None;
        }
        let identity = job.memo_identity()?;
        if conf.num_reduce_tasks() == 0 {
            return None;
        }
        let out = conf.output_path()?;
        if conf.is_temp_output(&out) {
            return None;
        }
        m3r_memo::FingerprintBasis::gather(&*self.fs, conf, &identity, "m3r", &[])
    }

    fn place_map(&self, job_seq: u64) -> PlaceMap {
        if self.opts.partition_stability {
            PlaceMap::Stable
        } else {
            PlaceMap::Unstable { job_seq }
        }
    }

    /// Pre-populate the input cache for `paths` (the matvec benchmark
    /// "pre-populated our cache with the input data" so the one-off load is
    /// not measured across what stands in for many iterations, §6.2).
    pub fn prepopulate_cache<K, V>(&self, conf: &JobConf, paths: &[HPath]) -> Result<()>
    where
        K: hmr_api::writable::WritableKey,
        V: hmr_api::writable::WritableValue,
    {
        let fmt = hmr_api::io::SequenceFileInputFormat::<K, V>::new();
        let mut sub = conf.clone();
        sub.set_input_paths(paths);
        let splits =
            hmr_api::io::InputFormat::get_splits(&fmt, &*self.fs, &sub, self.num_places())?;
        let place_map = PlaceMap::Stable;
        for (i, split) in splits.iter().enumerate() {
            let Some(name) = split.cache_name() else {
                continue;
            };
            let Some((path, _)) = cache_target(&name) else {
                continue;
            };
            let place = split
                .placed_partition()
                .map(|p| place_map.place_of(p, self.num_places()))
                .or_else(|| split.locations().first().map(|l| l % self.num_places()))
                .unwrap_or(i % self.num_places());
            let mut reader =
                hmr_api::io::InputFormat::record_reader(&fmt, &*self.fs, split.as_ref(), &sub)?;
            let mut pairs = Vec::new();
            while let Some((k, v)) = reader.next()? {
                pairs.push((Arc::new(k), Arc::new(v)));
            }
            self.cache().put_seq_for(
                place,
                &path,
                Arc::new(CachedSeq::new(pairs)),
                split.length(),
                conf.client_id(),
            )?;
        }
        Ok(())
    }
}

/// Resolve the sort/group tuning for one job: process defaults and env
/// overrides, then per-job conf knobs, then the engine's own
/// `hash_group_ingest` option as a final gate.
fn sort_tuning(conf: &JobConf, opts: &M3ROptions) -> SortTuning {
    let mut t = SortTuning::for_job(conf);
    t.hash_group &= opts.hash_group_ingest;
    t
}

/// `"path@offset+len"` → cacheable `(path, Some(len))`; plain names map to
/// `(path, None)`; non-zero offsets (partial-file splits) are not cacheable.
fn cache_target(name: &str) -> Option<(HPath, Option<u64>)> {
    if let Some((path, range)) = name.rsplit_once('@') {
        let (off, len) = range.split_once('+')?;
        let off: u64 = off.parse().ok()?;
        let len: u64 = len.parse().ok()?;
        if off != 0 {
            return None;
        }
        return Some((HPath::new(path), Some(len)));
    }
    Some((HPath::new(name), None))
}

/// Serialized length a sequence would have as a SequenceFile — the "file
/// size" reported for temporary outputs that never reach the DFS.
fn seq_file_len<K: Writable, V: Writable>(pairs: &[(Arc<K>, Arc<V>)]) -> u64 {
    let mut n = 4u64; // magic
    let mut scratch = Vec::new();
    for (k, v) in pairs {
        let (kl, vl) = (k.serialized_size() as u64, v.serialized_size() as u64);
        scratch.clear();
        write_vu64(&mut scratch, kl);
        write_vu64(&mut scratch, vl);
        n += scratch.len() as u64 + kl + vl;
    }
    n
}

/// The payload of a map-prefix memo entry: the assembled reduce-input
/// partitions of one finished map phase, `(partition, pairs)` sorted by
/// partition, typed by the job's intermediate `K2/V2` domain. Stored in the
/// [`m3r_memo::ReuseIndex`] as an opaque `Arc<dyn Any>` and downcast back
/// here — the engine name inside the fingerprint guarantees the type.
type MapPhaseData<J> =
    Vec<(usize, Vec<(Arc<<J as JobDef>::K2>, Arc<<J as JobDef>::V2>)>)>;

/// One map task's partitioned output, routed but not yet serialized.
///
/// Tasks in a wave may run concurrently, so they cannot touch the
/// place-wide `ShuffleStream`s (full de-dup spans every mapper at the
/// place). Instead each task returns its buckets and the place thread
/// pushes them into the streams afterwards, in task order, re-installing
/// the task's scratch meter so serialization is billed exactly as if the
/// task had done it inline.
struct RoutedOutput<J: JobDef> {
    /// Buckets staying at this place: `(partition, pairs)`.
    local: Vec<(usize, Vec<(Arc<J::K2>, Arc<J::V2>)>)>,
    /// Buckets headed elsewhere: `(destination place, partition, pairs)`.
    remote: Vec<(usize, usize, Vec<(Arc<J::K2>, Arc<J::V2>)>)>,
}

impl<J: JobDef> RoutedOutput<J> {
    fn empty() -> Self {
        RoutedOutput {
            local: Vec::new(),
            remote: Vec::new(),
        }
    }
}

/// One finished shuffle stream in flight between two places.
struct StreamPayload {
    /// The encoded records, shared by refcount — the receiver decodes
    /// straight out of this buffer and reclaims it into its own pool once
    /// the last record handle drops.
    bytes: Bytes,
    /// `(partition, records)` published by the sender, sorted by partition,
    /// so the receiver reserves exact ingest capacity without a counting
    /// pass over the decoded stream.
    counts: Vec<(usize, u64)>,
}

/// Cross-place state for one running job.
struct Shared<J: JobDef> {
    /// Locally shuffled pairs: `local[place][partition]`.
    local: Vec<Mutex<HashMap<usize, Vec<(Arc<J::K2>, Arc<J::V2>)>>>>,
    /// Serialized remote streams: `streams[dest][src]`. Slotting by source
    /// (instead of pushing in completion order) makes the receive order —
    /// and with it charge order and equal-key tie order — independent of
    /// how the place threads happen to interleave.
    streams: Vec<Vec<Mutex<Option<StreamPayload>>>>,
    counters: Mutex<Counters>,
    error: Mutex<Option<HmrError>>,
    output_records: AtomicU64,
}

impl<J: JobDef> Shared<J> {
    fn new(places: usize) -> Self {
        Shared {
            local: (0..places).map(|_| Mutex::new(HashMap::new())).collect(),
            streams: (0..places)
                .map(|_| (0..places).map(|_| Mutex::new(None)).collect())
                .collect(),
            counters: Mutex::new(Counters::new()),
            error: Mutex::new(None),
            output_records: AtomicU64::new(0),
        }
    }

    fn record(&self, r: Result<()>) {
        if let Err(e) = r {
            let mut slot = self.error.lock();
            if slot.is_none() {
                *slot = Some(e);
            }
        }
    }

    fn check(&self) -> Result<()> {
        match self.error.lock().take() {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }
}

impl Engine for M3REngine {
    fn engine_name(&self) -> &'static str {
        "m3r"
    }

    fn run_job<J: JobDef>(&mut self, job: Arc<J>, conf: &JobConf) -> Result<JobResult> {
        let seq = self.job_seq.fetch_add(1, Ordering::SeqCst) + 1;
        let cluster = self.cluster.clone();
        self.run_job_inner(&cluster, seq, job, conf)
    }
}

impl LaneEngine for M3REngine {
    fn home(&self) -> &Cluster {
        &self.cluster
    }

    fn run_lane<J: JobDef>(
        &self,
        lane: &Cluster,
        seq: u64,
        job: Arc<J>,
        conf: &JobConf,
    ) -> Result<JobResult> {
        self.run_job_inner(lane, seq, job, conf)
    }

    fn exclusive_only(&self) -> bool {
        // Under a finite budget or active quotas, cache-eviction order
        // depends on job interleaving; the server serializes dispatch so
        // the eviction sequence stays admission-deterministic.
        self.cluster.mem().budget().is_some() || self.cache().has_quotas()
    }

    fn set_client_quota(&self, client: &str, quota: Option<u64>) {
        self.cache().set_client_quota(client, quota);
    }

    fn try_memo_replay<J: JobDef>(
        &self,
        job: &Arc<J>,
        conf: &JobConf,
    ) -> Option<Result<JobResult>> {
        // Pre-admission whole-job hits only: a map-prefix match still runs
        // a real reduce phase and must occupy a lane (it triggers inside
        // `run_lane` → `run_job_inner` as usual).
        let basis = self.memo_basis(&**job, conf)?;
        let hit = self.memo.lookup_full(basis.job_fingerprint(), &*self.fs)?;
        let conf = Arc::new(conf.clone());
        let t0 = self.cluster.max_time();
        let m0 = self.cluster.metrics().snapshot();
        Some(self.replay_full(&self.cluster, &conf, hit, t0, &m0))
    }
}

impl M3REngine {
    /// The shared body of [`Engine::run_job`] and [`LaneEngine::run_lane`]:
    /// run one job against `cluster` (the home cluster for the classic
    /// blocking path, a [`Cluster::job_lane`] for server submissions) with
    /// `job_seq` as the engine-level job ordinal. Everything job-scoped
    /// (clocks, metrics deltas, trace job id) comes from `cluster`; the
    /// engine contributes the long-lived state — world, cache, buffer
    /// pools, distributed-cache memo.
    fn run_job_inner<J: JobDef>(
        &self,
        cluster: &Cluster,
        job_seq: u64,
        job: Arc<J>,
        conf: &JobConf,
    ) -> Result<JobResult> {
        let place_map = self.place_map(job_seq);
        let cluster = cluster.clone();
        let nplaces = cluster.len();
        let t0 = cluster.max_time();
        let m0 = cluster.metrics().snapshot();
        let conf = Arc::new(conf.clone());

        // ---- cross-job memoization (m3r-memo) --------------------------------
        // A whole-job fingerprint hit resolves the submission before any
        // splits, maps or shuffles exist: the retained output bytes land
        // back on the DFS unmetered (~0 simulated seconds, zero spans).
        let memo_basis = self.memo_basis(&*job, &conf);
        if let Some(basis) = &memo_basis {
            if let Some(hit) = self.memo.lookup_full(basis.job_fingerprint(), &*self.fs) {
                return self.replay_full(&cluster, &conf, hit, t0, &m0);
            }
        }

        let tjob = cluster
            .trace()
            .begin_job(&format!("{} (m3r)", conf.job_name()));

        // Submission is a fast in-memory hand-off, not a jobtracker round
        // trip: "small HMR jobs can run essentially instantly on M3R".
        // Charged through the meter so the submit span captures it; the
        // charge itself is identical with tracing on or off.
        simgrid::with_meter(Meter::new(cluster.node(0).clone()), || {
            trace::span(Phase::Submit, "submit", None, || {
                simgrid::meter::charge(Charge::Barrier);
            });
        });

        // Sub-job matching: the whole job missed, but if some earlier job
        // ran the identical map / combine / partition pipeline over these
        // exact inputs, its shuffle-stable reduce-input partitions are
        // retained — replay only the reduce side (no splits, no map waves,
        // no shuffle). A job is a memo *miss* only when both lookups fail.
        if let Some(basis) = &memo_basis {
            match self
                .memo
                .lookup_map::<MapPhaseData<J>>(basis.map_fingerprint(), &*self.fs)
            {
                Some((data, map_counters)) => {
                    return self.replay_reduce_only(
                        &cluster,
                        job,
                        conf,
                        basis,
                        &data,
                        map_counters,
                        t0,
                        &m0,
                        tjob,
                        place_map,
                    );
                }
                None => self.memo.note_miss(),
            }
        }

        let fs = Arc::clone(&self.fs);
        let input_format = job.input_format(&conf);
        let splits = simgrid::with_meter(Meter::new(cluster.node(0).clone()), || {
            trace::span(Phase::Setup, "get_splits", None, || {
                input_format.get_splits(&*fs, &conf, nplaces * self.opts.worker_threads)
            })
        })?;
        let splits: Arc<Vec<Arc<dyn InputSplit>>> = Arc::new(splits);
        let num_reducers = conf.num_reduce_tasks();
        let convert = if num_reducers == 0 {
            Some(job.map_only_convert().ok_or_else(|| {
                HmrError::InvalidJob(
                    "0 reducers requires JobDef::map_only_convert (map-only job)".into(),
                )
            })?)
        } else {
            None
        };

        // Distributed cache: loaded bytes persist across jobs in the
        // long-lived places; only new files are fetched.
        let dist_cache = {
            let mut memo = self.dist_memo.lock();
            let mut entries = Vec::new();
            for path in conf.cache_files() {
                let bytes = match memo.get(&path) {
                    Some(b) => b.clone(),
                    None => {
                        let b = simgrid::with_meter(
                            Meter::new(cluster.node(0).clone()),
                            || -> Result<Bytes> {
                                trace::span(Phase::Setup, "dist_cache", None, || {
                                    fs.open(&path)?.read_all()
                                })
                            },
                        )?;
                        memo.insert(path.clone(), b.clone());
                        b
                    }
                };
                entries.push((path, bytes));
            }
            Arc::new(DistCache::from_entries(entries))
        };

        // ---- split → place assignment ---------------------------------------
        // Priority: PlacedSplit (§4.3) → cached location (§3.2.1) → DFS
        // locality → round robin.
        let mut per_place: Vec<Vec<usize>> = vec![Vec::new(); nplaces];
        for (i, split) in splits.iter().enumerate() {
            let place = if let Some(p) = split.placed_partition() {
                place_map.place_of(p, nplaces)
            } else if let Some(cached) = self
                .opts
                .input_cache
                .then(|| {
                    split
                        .cache_name()
                        .and_then(|n| cache_target(&n))
                        .and_then(|(path, _)| fs.cache().place_of(&path))
                })
                .flatten()
            {
                cached
            } else if let Some(&loc) = split.locations().first() {
                loc % nplaces
            } else {
                i % nplaces
            };
            per_place[place].push(i);
        }
        let per_place = Arc::new(per_place);

        let shared: Arc<Shared<J>> = Arc::new(Shared::new(nplaces));

        // ---- map phase -------------------------------------------------------
        let opts = self.opts.clone();
        self.world.finish(|fin| {
            for place in 0..nplaces {
                let job = Arc::clone(&job);
                let conf = Arc::clone(&conf);
                let fs = Arc::clone(&fs);
                let cluster = cluster.clone();
                let splits = Arc::clone(&splits);
                let per_place = Arc::clone(&per_place);
                let shared = Arc::clone(&shared);
                let dist_cache = Arc::clone(&dist_cache);
                let convert = convert.clone();
                let opts = opts.clone();
                let pool = Arc::clone(&self.pools[place]);
                let arena = opts.arena.then(|| Arc::clone(&self.arenas[place]));
                fin.at(place, move |_pc| {
                    let r = map_phase_at_place(
                        place, &job, &conf, &fs, &cluster, &splits, &per_place[place],
                        &shared, &dist_cache, convert, &opts, place_map, num_reducers,
                        &pool, arena.as_deref(), tjob,
                    );
                    shared.record(r);
                });
            }
        });
        shared.check()?;
        // "No reducer is allowed to run until globally all shuffle messages
        // have been sent" — an X10 team barrier.
        cluster.barrier();

        // Map-side counters as of the shuffle barrier: a map-prefix memo
        // entry must replay them verbatim (they are reducer-independent).
        let map_counters = memo_basis
            .as_ref()
            .map(|_| shared.counters.lock().clone());
        // Capture the assembled reduce inputs for the map-prefix memo entry
        // — clones of the `Arc` pairs at the exact shuffle/reduce boundary,
        // so a replay reproduces reduce-input order bit-for-bit.
        let capture: Option<Arc<Mutex<MapPhaseData<J>>>> = memo_basis
            .as_ref()
            .map(|_| Arc::new(Mutex::new(Vec::new())));

        // ---- reduce phase ----------------------------------------------------
        if num_reducers > 0 {
            self.world.finish(|fin| {
                for place in 0..nplaces {
                    let job = Arc::clone(&job);
                    let conf = Arc::clone(&conf);
                    let fs = Arc::clone(&fs);
                    let cluster = cluster.clone();
                    let shared = Arc::clone(&shared);
                    let dist_cache = Arc::clone(&dist_cache);
                    let opts = opts.clone();
                    let pool = Arc::clone(&self.pools[place]);
                    let arena = opts.arena.then(|| Arc::clone(&self.arenas[place]));
                    let capture = capture.clone();
                    fin.at(place, move |_pc| {
                        let r = reduce_phase_at_place(
                            place, &job, &conf, &fs, &cluster, &shared, &dist_cache,
                            &opts, place_map, num_reducers, &pool, arena.as_deref(), tjob,
                            capture.as_deref(),
                        );
                        shared.record(r);
                    });
                }
            });
            shared.check()?;
            cluster.barrier();
        }

        // Job commit: _SUCCESS only for outputs that really reach the DFS.
        let output_format = job.output_format(&conf);
        if let Some(dir) = output_format.output_path(&conf) {
            if !conf.is_temp_output(&dir) {
                let marker = dir.join("_SUCCESS");
                if !fs.underlying().exists(&marker) {
                    let w = fs.underlying().create(&marker)?;
                    w.close()?;
                }
            }
        }

        let t_end = cluster.max_time();
        for node in cluster.nodes() {
            node.clock().advance_to(t_end);
        }

        let counters = shared.counters.lock().clone();
        let output_records = shared.output_records.load(Ordering::Relaxed);

        // Record this run's results in the reuse index (unmetered: the
        // read-back and the index insert cost nothing simulated, so a cold
        // run with memoization on stays sim-bit-identical to one without).
        if let Some(basis) = &memo_basis {
            self.memo_record_full(basis, &conf, &counters, output_records);
            if let (Some(capture), Some(map_counters)) = (capture, map_counters) {
                let mut parts = std::mem::take(&mut *capture.lock());
                parts.sort_by_key(|(p, _)| *p);
                let bytes: u64 = parts.iter().map(|(_, pairs)| seq_file_len(pairs)).sum();
                self.memo.record_map(
                    basis.map_fingerprint(),
                    basis.input_versions().to_vec(),
                    Arc::new(parts),
                    map_counters,
                    bytes,
                );
            }
        }

        Ok(JobResult {
            sim_time: t_end - t0,
            counters,
            metrics: cluster.metrics().snapshot().since(&m0),
            output_records,
        })
    }

    /// Replay a retained whole-job result: write the stored part bytes (and
    /// the `_SUCCESS` marker) into the submitted conf's output directory,
    /// all unmetered — the job "runs" in ~0 simulated seconds with zero
    /// map/shuffle spans. The trace still opens a job (keeping rollup job
    /// numbering consistent with submission order); it simply has no spans.
    fn replay_full(
        &self,
        cluster: &Cluster,
        conf: &Arc<JobConf>,
        hit: m3r_memo::FullHit,
        t0: f64,
        m0: &simgrid::metrics::MetricsSnapshot,
    ) -> Result<JobResult> {
        cluster
            .trace()
            .begin_job(&format!("{} (m3r memo)", conf.job_name()));
        let out_dir = conf.output_path().expect("memo_basis gated on output");
        for (name, bytes) in &hit.parts {
            let path = out_dir.join(name);
            // Writing through the caching view keeps any cached entry for a
            // previously-written part coherent (create invalidates it).
            if self.fs.exists(&path) {
                self.fs.delete(&path, false)?;
            }
            hmr_api::fs::write_file(&*self.fs, &path, bytes)?;
        }
        let marker = out_dir.join("_SUCCESS");
        if !self.fs.underlying().exists(&marker) {
            self.fs.underlying().create(&marker)?.close()?;
        }
        let t_end = cluster.max_time();
        for node in cluster.nodes() {
            node.clock().advance_to(t_end);
        }
        Ok(JobResult {
            sim_time: t_end - t0,
            counters: hit.counters,
            metrics: cluster.metrics().snapshot().since(m0),
            output_records: hit.output_records,
        })
    }

    /// Replay a map-prefix memo entry: seed the retained reduce-input
    /// partitions at their home places and run *only* the reduce side —
    /// metered normally (Sort/Reduce spans, real reducer work), but with no
    /// splits, no map waves and no shuffle. Byte-identical to a fresh run
    /// because the captured pairs are the exact assembled reduce inputs, in
    /// the exact order, that a fresh identical map phase would produce.
    #[allow(clippy::too_many_arguments)]
    fn replay_reduce_only<J: JobDef>(
        &self,
        cluster: &Cluster,
        job: Arc<J>,
        conf: Arc<JobConf>,
        basis: &m3r_memo::FingerprintBasis,
        data: &MapPhaseData<J>,
        map_counters: Counters,
        t0: f64,
        m0: &simgrid::metrics::MetricsSnapshot,
        tjob: u64,
        place_map: PlaceMap,
    ) -> Result<JobResult> {
        let nplaces = cluster.len();
        let num_reducers = conf.num_reduce_tasks();
        let shared: Arc<Shared<J>> = Arc::new(Shared::new(nplaces));
        *shared.counters.lock() = map_counters;
        for (p, pairs) in data {
            let place = place_map.place_of(*p, nplaces);
            shared.local[place]
                .lock()
                .insert(*p, pairs.clone());
        }

        // Distributed cache, exactly as on the normal path (reducers may
        // read it); bytes already resident in the long-lived places are
        // free, new ones charge their Setup span as usual.
        let dist_cache = {
            let mut memo = self.dist_memo.lock();
            let mut entries = Vec::new();
            for path in conf.cache_files() {
                let bytes = match memo.get(&path) {
                    Some(b) => b.clone(),
                    None => {
                        let b = simgrid::with_meter(
                            Meter::new(cluster.node(0).clone()),
                            || -> Result<Bytes> {
                                trace::span(Phase::Setup, "dist_cache", None, || {
                                    self.fs.open(&path)?.read_all()
                                })
                            },
                        )?;
                        memo.insert(path.clone(), b.clone());
                        b
                    }
                };
                entries.push((path, bytes));
            }
            Arc::new(DistCache::from_entries(entries))
        };

        let opts = self.opts.clone();
        self.world.finish(|fin| {
            for place in 0..nplaces {
                let job = Arc::clone(&job);
                let conf = Arc::clone(&conf);
                let fs = Arc::clone(&self.fs);
                let cluster = cluster.clone();
                let shared = Arc::clone(&shared);
                let dist_cache = Arc::clone(&dist_cache);
                let opts = opts.clone();
                let arena = opts.arena.then(|| Arc::clone(&self.arenas[place]));
                fin.at(place, move |_pc| {
                    let r = replay_reduce_at_place(
                        place, &job, &conf, &fs, &cluster, &shared, &dist_cache, &opts,
                        place_map, num_reducers, arena.as_deref(), tjob,
                    );
                    shared.record(r);
                });
            }
        });
        shared.check()?;
        cluster.barrier();

        let output_format = job.output_format(&conf);
        if let Some(dir) = output_format.output_path(&conf) {
            if !conf.is_temp_output(&dir) {
                let marker = dir.join("_SUCCESS");
                if !self.fs.underlying().exists(&marker) {
                    let w = self.fs.underlying().create(&marker)?;
                    w.close()?;
                }
            }
        }

        let t_end = cluster.max_time();
        for node in cluster.nodes() {
            node.clock().advance_to(t_end);
        }
        let counters = shared.counters.lock().clone();
        let output_records = shared.output_records.load(Ordering::Relaxed);
        // The replayed job is itself memoizable: record its whole-job
        // output so the next identical submission is a full hit (its map
        // entry is the one that just served us — already present).
        self.memo_record_full(basis, &conf, &counters, output_records);
        Ok(JobResult {
            sim_time: t_end - t0,
            counters,
            metrics: cluster.metrics().snapshot().since(m0),
            output_records,
        })
    }

    /// Read the finished job's part files back (unmetered) and retain them
    /// under its whole-job fingerprint. Best-effort: an unreadable output
    /// directory just skips recording — memoization must never fail a job
    /// that already succeeded.
    fn memo_record_full(
        &self,
        basis: &m3r_memo::FingerprintBasis,
        conf: &JobConf,
        counters: &Counters,
        output_records: u64,
    ) {
        let Some(out_dir) = conf.output_path() else {
            return;
        };
        let Ok(listing) = self.fs.underlying().list_status(&out_dir) else {
            return;
        };
        let mut parts = Vec::new();
        for st in listing {
            if st.is_dir {
                continue;
            }
            let name = st.path.name().unwrap_or_default().to_string();
            if name == "_SUCCESS" {
                continue;
            }
            match hmr_api::fs::read_file(&**self.fs.underlying(), &st.path) {
                Ok(bytes) => parts.push((name, bytes)),
                Err(_) => return,
            }
        }
        parts.sort_by(|a, b| a.0.cmp(&b.0));
        self.memo.record_full(
            basis.job_fingerprint(),
            basis.input_versions().to_vec(),
            parts,
            counters.clone(),
            output_records,
        );
    }
}

/// Everything one place does during the map phase.
#[allow(clippy::too_many_arguments)]
fn map_phase_at_place<J: JobDef>(
    place: usize,
    job: &Arc<J>,
    conf: &Arc<JobConf>,
    fs: &Arc<CachingFs>,
    cluster: &Cluster,
    splits: &Arc<Vec<Arc<dyn InputSplit>>>,
    my_splits: &[usize],
    shared: &Arc<Shared<J>>,
    dist_cache: &Arc<DistCache>,
    convert: Option<hmr_api::job::MapOnlyConvert<J::K2, J::V2, J::K3, J::V3>>,
    opts: &M3ROptions,
    place_map: PlaceMap,
    num_reducers: usize,
    pool: &Arc<BufPool>,
    arena: Option<&Arena>,
    tjob: u64,
) -> Result<()> {
    let node = cluster.node(place);
    let input_format = job.input_format(conf);
    let output_format = job.output_format(conf);
    let tuning = sort_tuning(conf, opts);
    let nplaces = cluster.len();
    // Streams persist across every mapper at this place: full
    // de-duplication spans the whole place→place channel. Only the place
    // thread touches them — worker threads return routed buckets instead.
    // With the pool on they write into recycled buffers from this place's
    // free-list (warm capacity from earlier jobs).
    let mut streams: Vec<Option<ShuffleStream>> = (0..nplaces).map(|_| None).collect();
    // Records per (destination, partition), published with each stream so
    // receivers reserve exact ingest capacity.
    let mut stream_counts: Vec<HashMap<usize, u64>> = vec![HashMap::new(); nplaces];
    // Locally shuffled pairs accumulate here in task order and are
    // published to `shared` once, after the last wave.
    let mut local_acc: HashMap<usize, Vec<(Arc<J::K2>, Arc<J::V2>)>> = HashMap::new();
    // Place-level shared combining (ROADMAP item 3): when enabled and the
    // job has a combiner, remote buckets are absorbed into one
    // `CombineTable` per destination instead of serializing immediately;
    // equal keys merge across every map task at this place and the tables
    // drain into the streams once — after the last wave, or early if a
    // finite budget is breached (degrading to plain streaming).
    let mut combine_tables: Option<Vec<CombineTable<J::K2, J::V2>>> =
        ((opts.place_combine || conf.place_level_combine())
            && num_reducers > 0
            && job.create_combiner(conf).is_some())
        .then(|| (0..nplaces).map(|_| CombineTable::new()).collect());
    // (input records, output records) that went through the place combiner.
    let mut place_combined = (0u64, 0u64);
    let mut combine_counters = Counters::new();

    for wave in my_splits.chunks(opts.worker_threads) {
        // Scratch clocks start at zero; spans recorded during the wave are
        // wave-relative and rebase onto the place clock as of wave start.
        let wave_base = node.clock().now();
        // Under a finite memory budget the cache traffic inside each task
        // (input-cache puts, reloads of spilled entries) is order-sensitive:
        // eviction victims depend on admission order. Waves run sequentially
        // then, so the eviction sequence follows task order instead of the
        // thread schedule; with the default infinite budget the pool stays a
        // pure wall-clock optimization.
        let (results, scratches) = simgrid::pool::run_wave(
            cluster,
            place,
            opts.real_parallelism && cluster.mem().budget().is_none(),
            wave.to_vec(),
            |si: usize| {
                let r = trace::span(Phase::Map, "map", Some(si as u64), || {
                    run_map_task(
                        place, si, job, conf, fs, &*input_format, &*output_format,
                        splits[si].as_ref(), shared, dist_cache, convert.clone(), opts,
                        place_map, num_reducers, nplaces, &tuning, arena,
                    )
                });
                (r, trace::take_pending())
            },
        );
        // Serialize each task's remote buckets into the place-wide streams
        // in task order, billing the task's own scratch clock — the same
        // charges, in the same stream order, as the sequential execution.
        for (i, (result, task_spans)) in results.into_iter().enumerate() {
            let si = wave[i];
            let scratch = &scratches[i];
            cluster.trace().record_rebased(tjob, place, wave_base, task_spans);
            let routed = result?;
            simgrid::with_meter(Meter::new(scratch.clone()), || -> Result<()> {
                if let Some(tables) = combine_tables.as_mut() {
                    // Absorb instead of serializing: equal keys merge across
                    // tasks, and only the (cheaper) key encoding is billed
                    // now — the combined output serializes at drain time.
                    trace::span(Phase::Combine, "absorb", Some(si as u64), || {
                        for (dest, p, bucket) in &routed.remote {
                            let mut grew = 0u64;
                            let mut key_bytes = 0u64;
                            for (k, v) in bucket {
                                let (g, kb) = tables[*dest].absorb(*p, k, v);
                                grew += g;
                                key_bytes += kb;
                            }
                            cluster
                                .mem()
                                .grow(place, simgrid::MemClass::Combine, grew);
                            simgrid::meter::charge(Charge::Serialize { bytes: key_bytes });
                        }
                    });
                } else {
                    trace::span(Phase::Shuffle, "serialize", Some(si as u64), || {
                        for (dest, p, bucket) in &routed.remote {
                            let stream = streams[*dest].get_or_insert_with(|| {
                                if opts.buffer_pool {
                                    ShuffleStream::with_buffer(pool.get_any(1024), opts.dedup)
                                } else {
                                    ShuffleStream::new(opts.dedup)
                                }
                            });
                            // Reserve from `serialized_size` hints (plus framing)
                            // so the bucket appends without re-growing mid-push.
                            let hint: usize = bucket
                                .iter()
                                .map(|(k, v)| k.serialized_size() + v.serialized_size() + 16)
                                .sum();
                            stream.reserve(hint);
                            let before = stream.len();
                            for (k, v) in bucket {
                                stream.push(*p, k, v);
                            }
                            simgrid::meter::charge(Charge::Serialize {
                                bytes: (stream.len() - before) as u64,
                            });
                            *stream_counts[*dest].entry(*p).or_insert(0) +=
                                bucket.len() as u64;
                        }
                    });
                }
                // Governor interaction: if absorbing pushed this place over
                // its budget, combine what is held now and degrade to plain
                // streaming for the rest of the map phase. Deterministic —
                // finite-budget waves always run sequentially, so the flush
                // point depends only on task order. The flush bills the
                // current task's scratch clock.
                if combine_tables.is_some() {
                    if let Some(budget) = cluster.mem().budget() {
                        if cluster.mem().live(place) > budget {
                            let tables = combine_tables.take().expect("checked above");
                            let (ins, outs, cc) = drain_combine_tables(
                                tables, &mut streams, &mut stream_counts, job, conf,
                                dist_cache, place, cluster, opts, pool,
                            )?;
                            place_combined.0 += ins;
                            place_combined.1 += outs;
                            combine_counters.merge(&cc);
                        }
                    }
                }
                Ok(())
            })?;
            cluster
                .trace()
                .record_rebased(tjob, place, wave_base, trace::take_pending());
            for (p, bucket) in routed.local {
                local_acc.entry(p).or_default().extend(bucket);
            }
        }
        node.clock()
            .advance(simgrid::pool::wave_duration(&scratches));
        // Wave boundary: trim this place's scratch shelf back to its
        // retention cap (wall-clock only; nothing simulated observes it).
        if let Some(a) = arena {
            a.end_wave();
        }
    }

    // Drain the (never-overflowed) combine tables into the streams on the
    // place thread: combiner work and the one serialization pass are billed
    // straight to the place clock, like reduce-side ingest.
    if let Some(tables) = combine_tables.take() {
        let (ins, outs, cc) = simgrid::with_meter(Meter::new(node.clone()), || {
            drain_combine_tables(
                tables, &mut streams, &mut stream_counts, job, conf, dist_cache, place,
                cluster, opts, pool,
            )
        })?;
        place_combined.0 += ins;
        place_combined.1 += outs;
        combine_counters.merge(&cc);
    }

    if !local_acc.is_empty() {
        let mut local = shared.local[place].lock();
        for (p, bucket) in local_acc {
            local.entry(p).or_default().extend(bucket);
        }
    }

    // Hand finished streams to their destinations; the network cost is
    // charged at the receiver after the barrier. Stream statistics are
    // accumulated locally and merged under a single `shared.counters` lock
    // take per place.
    let mut stream_bytes = 0i64;
    let mut dedup_hits = 0i64;
    let mut dedup_retained = 0i64;
    let mut any_stream = false;
    for (dest, slot) in streams.into_iter().enumerate() {
        if let Some(stream) = slot {
            if stream.is_empty() {
                continue;
            }
            let (bytes, stats) = stream.finish();
            any_stream = true;
            stream_bytes += bytes.len() as i64;
            dedup_hits += stats.dedup_hits as i64;
            dedup_retained += stats.values_retained as i64;
            let mut counts: Vec<(usize, u64)> =
                std::mem::take(&mut stream_counts[dest]).into_iter().collect();
            counts.sort_unstable();
            // The payload is parked at the destination until its reduce
            // wave ingests it; those bytes are live memory at `dest`.
            cluster
                .mem()
                .grow(dest, simgrid::MemClass::Shuffle, bytes.len() as u64);
            *shared.streams[dest][place].lock() = Some(StreamPayload { bytes, counts });
        }
    }
    if any_stream || place_combined.0 > 0 {
        let mut counters = shared.counters.lock();
        counters.incr(M3R_COUNTER_GROUP, "SHUFFLE_STREAM_BYTES", stream_bytes);
        counters.incr(M3R_COUNTER_GROUP, "DEDUP_HITS", dedup_hits);
        counters.incr(M3R_COUNTER_GROUP, "DEDUP_RETAINED_VALUES", dedup_retained);
        if place_combined.0 > 0 {
            counters.incr(
                M3R_COUNTER_GROUP,
                "PLACE_COMBINE_INPUT_RECORDS",
                place_combined.0 as i64,
            );
            counters.incr(
                M3R_COUNTER_GROUP,
                "PLACE_COMBINE_OUTPUT_RECORDS",
                place_combined.1 as i64,
            );
            counters.merge(&combine_counters);
        }
    }
    Ok(())
}

/// Combine-and-serialize the place's combine tables into the shuffle
/// streams: for every `(partition, key)` group — partition-ascending,
/// key-bytes-ascending, values in task order — run the job's combiner, then
/// push the combined pairs. Grouping is billed as sort work over the
/// absorbed records and the combined output as serialize work, on whatever
/// meter is installed (a task scratch clock for a budget flush, the place
/// clock for the end-of-map drain). Returns `(absorbed records, emitted
/// records, combiner counters)`.
#[allow(clippy::too_many_arguments)]
fn drain_combine_tables<J: JobDef>(
    mut tables: Vec<CombineTable<J::K2, J::V2>>,
    streams: &mut [Option<ShuffleStream>],
    stream_counts: &mut [HashMap<usize, u64>],
    job: &Arc<J>,
    conf: &Arc<JobConf>,
    dist_cache: &Arc<DistCache>,
    place: usize,
    cluster: &Cluster,
    opts: &M3ROptions,
    pool: &Arc<BufPool>,
) -> Result<(u64, u64, Counters)> {
    let mut combiner = job
        .create_combiner(conf)
        .expect("combine tables only exist for jobs with a combiner");
    let mut ctx = TaskContext::new(
        format!("m3r_pc_{place:06}"),
        Arc::clone(conf),
        Arc::clone(dist_cache),
    );
    let mut absorbed = 0u64;
    let mut emitted = 0u64;
    trace::span(Phase::Combine, "drain", None, || -> Result<()> {
        for (dest, table) in tables.iter_mut().enumerate() {
            if table.is_empty() {
                continue;
            }
            let table_bytes = table.bytes();
            let records = table.records();
            absorbed += records;
            // Grouping happened incrementally at absorb time (the BTreeMap
            // insert, billed per key there); the drain is one ordered walk,
            // so only the emitted groups pay a sort-pass record each. This
            // is what makes place combining a net win in `records_sorted`:
            // the reducers re-sort far fewer records than the mappers fed
            // into the tables.
            simgrid::meter::charge(Charge::Sort {
                records: table.groups() as u64,
            });
            let stream = streams[dest].get_or_insert_with(|| {
                if opts.buffer_pool {
                    ShuffleStream::with_buffer(pool.get_any(1024), opts.dedup)
                } else {
                    ShuffleStream::new(opts.dedup)
                }
            });
            stream.reserve(table_bytes as usize);
            let before = stream.len();
            for (p, key, values) in table.drain() {
                let mut out: hmr_api::collect::VecCollector<J::K2, J::V2> =
                    hmr_api::collect::VecCollector::new();
                let mut vals = values.iter().map(Arc::clone);
                combiner.reduce(key, &mut vals, &mut out, &mut ctx)?;
                for (k, v) in &out.pairs {
                    stream.push(p, k, v);
                }
                *stream_counts[dest].entry(p).or_insert(0) += out.pairs.len() as u64;
                emitted += out.pairs.len() as u64;
            }
            simgrid::meter::charge(Charge::Serialize {
                bytes: (stream.len() - before) as u64,
            });
            cluster
                .mem()
                .shrink(place, simgrid::MemClass::Combine, table_bytes);
        }
        Ok(())
    })?;
    Ok((absorbed, emitted, ctx.into_counters()))
}

/// One map task: cache-aware input, real mapper, optional combiner, then
/// routing into local and remote buckets. Safe to run concurrently with
/// the other tasks of its wave: it only touches per-task state plus the
/// thread-safe cache/DFS/counters, and returns its routed buckets for the
/// place thread to serialize in task order.
#[allow(clippy::too_many_arguments)]
fn run_map_task<J: JobDef>(
    place: usize,
    si: usize,
    job: &Arc<J>,
    conf: &Arc<JobConf>,
    fs: &Arc<CachingFs>,
    input_format: &dyn hmr_api::io::InputFormat<J::K1, J::V1>,
    output_format: &dyn OutputFormat<J::K3, J::V3>,
    split: &dyn InputSplit,
    shared: &Arc<Shared<J>>,
    dist_cache: &Arc<DistCache>,
    convert: Option<hmr_api::job::MapOnlyConvert<J::K2, J::V2, J::K3, J::V3>>,
    opts: &M3ROptions,
    place_map: PlaceMap,
    num_reducers: usize,
    nplaces: usize,
    tuning: &SortTuning,
    arena: Option<&Arena>,
) -> Result<RoutedOutput<J>> {
    let mut ctx = TaskContext::new(
        format!("m3r_m_{si:06}"),
        Arc::clone(conf),
        Arc::clone(dist_cache),
    );
    ctx.set_split_tag(hmr_api::multi::split_tag(split));

    // ---- acquire the input sequence (§3.2.1) ----------------------------
    let target = split.cache_name().and_then(|n| cache_target(&n));
    let mut pairs: Option<Arc<CachedSeq<J::K1, J::V1>>> = None;
    if opts.input_cache {
        if let Some((path, len)) = &target {
            if let Some(hit) = fs.cache().get_seq::<J::K1, J::V1>(path, *len) {
                // Cache hit: no RecordReader, no deserialization, no I/O.
                // A hit at another place pays one network move (the
                // PlacedSplit remote-read path of §6.1.1).
                if hit.place != place {
                    simgrid::meter::charge(Charge::NetTransfer { bytes: hit.meta.len });
                }
                ctx.incr_task_counter(
                    task_counter::CACHE_HIT_RECORDS,
                    hit.meta.records as i64,
                );
                pairs = Some(hit.seq);
            }
        }
    }
    let pairs = match pairs {
        Some(p) => p,
        None => {
            let mut reader = input_format.record_reader(&**fs, split, conf)?;
            simgrid::meter::charge(Charge::Deserialize {
                bytes: split.length(),
            });
            let mut v = Vec::new();
            while let Some((k, val)) = reader.next()? {
                v.push((Arc::new(k), Arc::new(val)));
            }
            let seq = Arc::new(CachedSeq::new(v));
            if opts.input_cache {
                if let Some((path, _)) = &target {
                    // "Before passing it to the mapper, M3R caches the
                    // key/value pairs in memory."
                    fs.cache().put_seq_for(
                        place,
                        path,
                        Arc::clone(&seq),
                        split.length(),
                        conf.client_id(),
                    )?;
                }
            }
            seq
        }
    };

    // ---- run the mapper ---------------------------------------------------
    let num_parts = num_reducers.max(1);
    // The input sequence is already materialized, so its length pre-sizes
    // the partition buckets (uniform spread assumption).
    let mut buffer = MapOutputBuffer::with_capacity_hint(
        num_parts,
        job.partitioner(conf),
        job.immutable_output(),
        pairs.pairs.len(),
    );
    let mut mapper = job.create_mapper(conf);
    let compute_start = Instant::now();
    mapper.setup(&mut ctx)?;
    for (k, v) in &pairs.pairs {
        mapper.map(Arc::clone(k), Arc::clone(v), &mut buffer, &mut ctx)?;
    }
    mapper.cleanup(&mut buffer, &mut ctx)?;
    simgrid::meter::charge(Charge::Compute {
        seconds: compute_start.elapsed().as_secs_f64(),
    });
    ctx.incr_task_counter(task_counter::MAP_INPUT_RECORDS, pairs.pairs.len() as i64);
    ctx.incr_task_counter(task_counter::MAP_OUTPUT_RECORDS, buffer.emitted() as i64);
    let mut parts = buffer.parts;

    // ---- optional combiner --------------------------------------------------
    if let Some(mut combiner) = job.create_combiner(conf) {
        let sort_cmp = job.sort_comparator();
        let group_cmp = job.grouping_comparator();
        for bucket in parts.iter_mut() {
            if bucket.len() < 2 {
                continue;
            }
            simgrid::meter::charge(Charge::Sort {
                records: bucket.len() as u64,
            });
            let mut sorted = std::mem::take(bucket);
            let spans = ingest_reduce_groups(&mut sorted, &sort_cmp, &group_cmp, tuning, arena);
            ctx.incr_task_counter(task_counter::COMBINE_INPUT_RECORDS, sorted.len() as i64);
            let mut out: hmr_api::collect::VecCollector<J::K2, J::V2> =
                hmr_api::collect::VecCollector::new();
            for span in spans {
                let key = Arc::clone(&sorted[span.start].0);
                let mut values = sorted[span.clone()].iter().map(|(_, v)| Arc::clone(v));
                combiner.reduce(key, &mut values, &mut out, &mut ctx)?;
            }
            ctx.incr_task_counter(
                task_counter::COMBINE_OUTPUT_RECORDS,
                out.pairs.len() as i64,
            );
            *bucket = out.pairs;
            if let Some(a) = arena {
                a.recycle(sorted);
            }
        }
    }

    // ---- map-only: straight to output (§5.3) --------------------------------
    if let Some(convert) = convert {
        let all: Vec<(Arc<J::K2>, Arc<J::V2>)> = parts.into_iter().flatten().collect();
        let converted: Vec<(Arc<J::K3>, Arc<J::V3>)> =
            all.into_iter().map(|(k, v)| convert(k, v)).collect();
        let records = converted.len() as u64;
        write_and_cache_output(
            place, si, conf, fs, output_format, converted, job.immutable_output(),
        )?;
        shared.output_records.fetch_add(records, Ordering::Relaxed);
        shared.counters.lock().merge(&ctx.into_counters());
        return Ok(RoutedOutput::empty());
    }

    // ---- route: local buckets vs remote buckets (§3.2.2) --------------------
    // Serialization into the place-wide de-duplicating streams is deferred
    // to the place thread (task order), so concurrent tasks never contend
    // on shared serializer state.
    let mut routed = RoutedOutput::<J>::empty();
    let mut local_n = 0i64;
    let mut remote_n = 0i64;
    for (p, bucket) in parts.into_iter().enumerate() {
        if bucket.is_empty() {
            continue;
        }
        let dest = place_map.place_of(p, nplaces);
        if dest == place {
            local_n += bucket.len() as i64;
            routed.local.push((p, bucket));
        } else {
            remote_n += bucket.len() as i64;
            routed.remote.push((dest, p, bucket));
        }
    }
    ctx.incr_task_counter(task_counter::LOCAL_SHUFFLED_RECORDS, local_n);
    ctx.incr_task_counter(task_counter::REMOTE_SHUFFLED_RECORDS, remote_n);
    shared.counters.lock().merge(&ctx.into_counters());
    Ok(routed)
}

/// Everything one place does during the reduce phase.
#[allow(clippy::too_many_arguments)]
fn reduce_phase_at_place<J: JobDef>(
    place: usize,
    job: &Arc<J>,
    conf: &Arc<JobConf>,
    fs: &Arc<CachingFs>,
    cluster: &Cluster,
    shared: &Arc<Shared<J>>,
    dist_cache: &Arc<DistCache>,
    opts: &M3ROptions,
    place_map: PlaceMap,
    num_reducers: usize,
    pool: &Arc<BufPool>,
    arena: Option<&Arena>,
    tjob: u64,
    capture: Option<&Mutex<MapPhaseData<J>>>,
) -> Result<()> {
    let node = cluster.node(place);
    let nplaces = cluster.len();
    let output_format = job.output_format(conf);
    let tuning = sort_tuning(conf, opts);

    // Receive remote streams: network + deserialization, charged here — the
    // receiving place does this work after the shuffle barrier. The
    // partition map is pre-sized from the reducer count, per-partition
    // vectors are reserved from the sender-published counts, and records
    // stream lazily out of the shared buffer — no intermediate Vec of
    // decoded records is ever built.
    let incoming: Vec<StreamPayload> = shared.streams[place]
        .iter()
        .filter_map(|slot| slot.lock().take())
        .collect();
    for payload in &incoming {
        // Ingest un-parks the payload: its bytes stop being live shuffle
        // memory here (pool reclamation re-counts them as pool bytes).
        cluster
            .mem()
            .shrink(place, simgrid::MemClass::Shuffle, payload.bytes.len() as u64);
    }
    let my_parts: Vec<usize> = (0..num_reducers)
        .filter(|p| place_map.place_of(*p, nplaces) == place)
        .collect();
    let mut remote: HashMap<usize, Vec<(Arc<J::K2>, Arc<J::V2>)>> =
        HashMap::with_capacity(my_parts.len());
    simgrid::with_meter(Meter::new(node.clone()), || -> Result<()> {
        trace::span(Phase::Shuffle, "ingest", None, || -> Result<()> {
            for payload in incoming {
                simgrid::meter::charge(Charge::NetTransfer {
                    bytes: payload.bytes.len() as u64,
                });
                simgrid::meter::charge(Charge::Deserialize {
                    bytes: payload.bytes.len() as u64,
                });
                for &(p, n) in &payload.counts {
                    remote.entry(p).or_default().reserve(n as usize);
                }
                for rec in decode_stream::<J::K2, J::V2>(payload.bytes.clone()) {
                    let (p, k, v) = rec?;
                    remote
                        .get_mut(&p)
                        .expect("reserved from the published counts")
                        .push((k, v));
                }
                // The iterator's refcount dropped with the loop; if this was
                // the last handle the buffer returns to this place's pool.
                if opts.buffer_pool {
                    pool.reclaim(payload.bytes);
                }
            }
            Ok(())
        })
    })?;
    let mut local = std::mem::take(&mut *shared.local[place].lock());

    for wave in my_parts.chunks(opts.worker_threads) {
        // Gather each partition's input on the place thread (pointer moves,
        // no charges), then run the wave's reducers on the worker pool.
        let inputs: Vec<(usize, Vec<(Arc<J::K2>, Arc<J::V2>)>)> = wave
            .iter()
            .map(|&p| {
                let mut pairs = local.remove(&p).unwrap_or_default();
                if let Some(r) = remote.remove(&p) {
                    pairs.extend(r);
                }
                (p, pairs)
            })
            .collect();
        // Memo capture (m3r-memo): snapshot the assembled inputs at the
        // exact shuffle/reduce boundary. `Arc` clones only — unmetered,
        // wall-clock-invisible to the simulation.
        if let Some(cap) = capture {
            let mut cap = cap.lock();
            for (p, pairs) in &inputs {
                cap.push((*p, pairs.clone()));
            }
        }
        let wave_base = node.clock().now();
        // Sequential under a finite budget, for the same determinism reason
        // as the map waves: reducer output-cache puts may evict.
        let (results, scratches) = simgrid::pool::run_wave(
            cluster,
            place,
            opts.real_parallelism && cluster.mem().budget().is_none(),
            inputs,
            |(p, pairs): (usize, Vec<(Arc<J::K2>, Arc<J::V2>)>)| {
                let r = trace::span(Phase::Reduce, "reduce", Some(p as u64), || {
                    run_reduce_partition(
                        place, p, job, conf, fs, &*output_format, pairs, shared, dist_cache,
                        &tuning, arena,
                    )
                });
                (r, trace::take_pending())
            },
        );
        for (result, task_spans) in results {
            cluster.trace().record_rebased(tjob, place, wave_base, task_spans);
            result?;
        }
        node.clock()
            .advance(simgrid::pool::wave_duration(&scratches));
        // Wave boundary: trim this place's scratch shelf back to its
        // retention cap (wall-clock only; nothing simulated observes it).
        if let Some(a) = arena {
            a.end_wave();
        }
    }
    Ok(())
}

/// The reduce side of a map-prefix memo replay: identical to the wave loop
/// of [`reduce_phase_at_place`], minus stream ingest (the seeded
/// `shared.local` holds the retained, already-assembled partitions) and
/// minus any Shuffle span — the rollup must show the shuffle as elided, so
/// this deliberately does not reuse `reduce_phase_at_place` (whose empty
/// ingest span would still count a Shuffle row).
#[allow(clippy::too_many_arguments)]
fn replay_reduce_at_place<J: JobDef>(
    place: usize,
    job: &Arc<J>,
    conf: &Arc<JobConf>,
    fs: &Arc<CachingFs>,
    cluster: &Cluster,
    shared: &Arc<Shared<J>>,
    dist_cache: &Arc<DistCache>,
    opts: &M3ROptions,
    place_map: PlaceMap,
    num_reducers: usize,
    arena: Option<&Arena>,
    tjob: u64,
) -> Result<()> {
    let node = cluster.node(place);
    let nplaces = cluster.len();
    let output_format = job.output_format(conf);
    let tuning = sort_tuning(conf, opts);
    let mut local = std::mem::take(&mut *shared.local[place].lock());
    let my_parts: Vec<usize> = (0..num_reducers)
        .filter(|p| place_map.place_of(*p, nplaces) == place)
        .collect();
    for wave in my_parts.chunks(opts.worker_threads) {
        let inputs: Vec<(usize, Vec<(Arc<J::K2>, Arc<J::V2>)>)> = wave
            .iter()
            .map(|&p| (p, local.remove(&p).unwrap_or_default()))
            .collect();
        let wave_base = node.clock().now();
        let (results, scratches) = simgrid::pool::run_wave(
            cluster,
            place,
            opts.real_parallelism && cluster.mem().budget().is_none(),
            inputs,
            |(p, pairs): (usize, Vec<(Arc<J::K2>, Arc<J::V2>)>)| {
                let r = trace::span(Phase::Reduce, "reduce", Some(p as u64), || {
                    run_reduce_partition(
                        place, p, job, conf, fs, &*output_format, pairs, shared, dist_cache,
                        &tuning, arena,
                    )
                });
                (r, trace::take_pending())
            },
        );
        for (result, task_spans) in results {
            cluster.trace().record_rebased(tjob, place, wave_base, task_spans);
            result?;
        }
        node.clock()
            .advance(simgrid::pool::wave_duration(&scratches));
        if let Some(a) = arena {
            a.end_wave();
        }
    }
    Ok(())
}

/// Reduce-side collector: main-output pairs accumulate in memory (for the
/// cache and the deferred DFS write); named side outputs (`MultipleOutputs`,
/// §4.2.2) stream straight to their writers and bypass the cache.
struct ReduceCollector<'a, K, V> {
    main: Vec<(Arc<K>, Arc<V>)>,
    /// Ordered so `close()` visits (and charges) writers deterministically.
    named: BTreeMap<String, Box<dyn hmr_api::io::RecordWriter<K, V>>>,
    format: &'a dyn OutputFormat<K, V>,
    fs: &'a CachingFs,
    conf: &'a JobConf,
    partition: usize,
}

impl<K: Writable, V: Writable> ReduceCollector<'_, K, V> {
    fn close(self) -> Result<Vec<(Arc<K>, Arc<V>)>> {
        for (_, w) in self.named {
            w.close()?;
        }
        Ok(self.main)
    }
}

impl<K: Writable, V: Writable> hmr_api::collect::OutputCollector<K, V>
    for ReduceCollector<'_, K, V>
{
    fn collect(&mut self, key: Arc<K>, value: Arc<V>) -> Result<()> {
        self.main.push((key, value));
        Ok(())
    }

    fn collect_named(&mut self, name: &str, key: Arc<K>, value: Arc<V>) -> Result<()> {
        if !self.named.contains_key(name) {
            let w = self
                .format
                .record_writer_named(self.fs, self.conf, name, self.partition)?;
            self.named.insert(name.to_string(), w);
        }
        simgrid::meter::charge(Charge::Serialize {
            bytes: (key.serialized_size() + value.serialized_size()) as u64,
        });
        self.named
            .get_mut(name)
            .expect("inserted above")
            .write(&key, &value)
    }
}

/// One reduce partition: in-memory sort + group, real reducer, cache the
/// output (and write to the DFS unless the output is temporary, §4.2.3).
#[allow(clippy::too_many_arguments)]
fn run_reduce_partition<J: JobDef>(
    place: usize,
    partition: usize,
    job: &Arc<J>,
    conf: &Arc<JobConf>,
    fs: &Arc<CachingFs>,
    output_format: &dyn OutputFormat<J::K3, J::V3>,
    mut pairs: Vec<(Arc<J::K2>, Arc<J::V2>)>,
    shared: &Arc<Shared<J>>,
    dist_cache: &Arc<DistCache>,
    tuning: &SortTuning,
    arena: Option<&Arena>,
) -> Result<()> {
    let mut ctx = TaskContext::new(
        format!("m3r_r_{partition:06}"),
        Arc::clone(conf),
        Arc::clone(dist_cache),
    );
    ctx.set_partition(Some(partition));

    // The ingest kernel (sort-based or hash-grouped, see
    // `ingest_reduce_groups`) always yields groups in the sorted order and
    // bills one sort-pass record per pair, so the simulated charge — and
    // with it every downstream clock — is independent of which path ran.
    let spans = trace::span(Phase::Sort, "sort", Some(partition as u64), || {
        simgrid::meter::charge(Charge::Sort {
            records: pairs.len() as u64,
        });
        let sort_cmp = job.sort_comparator();
        let group_cmp = job.grouping_comparator();
        ingest_reduce_groups(&mut pairs, &sort_cmp, &group_cmp, tuning, arena)
    });
    ctx.incr_task_counter(task_counter::REDUCE_INPUT_RECORDS, pairs.len() as i64);
    ctx.incr_task_counter(task_counter::REDUCE_INPUT_GROUPS, spans.len() as i64);

    let mut out = ReduceCollector {
        main: Vec::new(),
        named: BTreeMap::new(),
        format: output_format,
        fs,
        conf,
        partition,
    };
    let mut reducer = job.create_reducer(conf);
    let compute_start = Instant::now();
    reducer.setup(&mut ctx)?;
    for span in spans {
        let key = Arc::clone(&pairs[span.start].0);
        let mut values = pairs[span.clone()].iter().map(|(_, v)| Arc::clone(v));
        reducer.reduce(key, &mut values, &mut out, &mut ctx)?;
    }
    reducer.cleanup(&mut out, &mut ctx)?;
    simgrid::meter::charge(Charge::Compute {
        seconds: compute_start.elapsed().as_secs_f64(),
    });
    if let Some(a) = arena {
        // The ingested pair vector goes back on the shelf for the next
        // partition of this wave (or the next job) to lease.
        a.recycle(pairs);
    }

    let main_pairs = out.close()?;
    let records = main_pairs.len() as u64;
    ctx.incr_task_counter(task_counter::REDUCE_OUTPUT_RECORDS, records as i64);
    write_and_cache_output(
        place,
        partition,
        conf,
        fs,
        output_format,
        main_pairs,
        job.immutable_output(),
    )?;
    shared.output_records.fetch_add(records, Ordering::Relaxed);
    shared.counters.lock().merge(&ctx.into_counters());
    Ok(())
}

/// Output handling shared by reducers and map-only mappers: cache the
/// sequence at this place under the part file's name; write it to the DFS
/// through the RecordWriter unless the output is temporary.
fn write_and_cache_output<K3, V3>(
    place: usize,
    partition: usize,
    conf: &Arc<JobConf>,
    fs: &Arc<CachingFs>,
    output_format: &dyn OutputFormat<K3, V3>,
    pairs: Vec<(Arc<K3>, Arc<V3>)>,
    immutable: bool,
) -> Result<()>
where
    K3: Writable + Clone + Send + Sync,
    V3: Writable + Clone + Send + Sync,
{
    // Reducer output is subject to the same reuse contract as mapper
    // output: without ImmutableOutput the cache must hold copies.
    let pairs: Vec<(Arc<K3>, Arc<V3>)> = if immutable {
        pairs
    } else {
        pairs
            .into_iter()
            .map(|(k, v)| {
                simgrid::meter::charge(Charge::Clone {
                    bytes: (k.serialized_size() + v.serialized_size()) as u64,
                });
                simgrid::meter::charge(Charge::Alloc { objects: 2 });
                (Arc::new((*k).clone()), Arc::new((*v).clone()))
            })
            .collect()
    };

    let Some(dir) = output_format.output_path(conf) else {
        // Un-nameable output (§4.2.1): write through, bypass the cache.
        let mut writer = output_format.record_writer(&**fs, conf, partition)?;
        for (k, v) in &pairs {
            simgrid::meter::charge(Charge::Serialize {
                bytes: (k.serialized_size() + v.serialized_size()) as u64,
            });
            writer.write(k, v)?;
        }
        writer.close()?;
        return Ok(());
    };
    let part_path = dir.join(&part_file_name(partition));
    let is_temp = conf.is_temp_output(&dir);

    let len = if is_temp {
        // "If the output data is determined to be temporary ... the data
        // does not even need to be flushed to disk."
        seq_file_len(&pairs)
    } else {
        let mut writer = output_format.record_writer(&**fs, conf, partition)?;
        for (k, v) in &pairs {
            simgrid::meter::charge(Charge::Serialize {
                bytes: (k.serialized_size() + v.serialized_size()) as u64,
            });
            writer.write(k, v)?;
        }
        writer.close()?;
        fs.underlying()
            .get_file_status(&part_path)
            .map(|s| s.len)
            .unwrap_or_else(|_| seq_file_len(&pairs))
    };
    fs.cache().put_seq_for(
        place,
        &part_path,
        Arc::new(CachedSeq::new(pairs)),
        len,
        conf.client_id(),
    )?;
    Ok(())
}
