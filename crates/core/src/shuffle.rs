//! The in-memory shuffle (paper §3.2.2).
//!
//! Three cost regimes, all observable in the metrics:
//! * **local, `ImmutableOutput`** — the emitted `Arc`s flow straight from
//!   mapper to reducer: zero copies, zero serialization, zero network;
//! * **local, default** — M3R "conservatively make\[s\] a copy of every
//!   key/value pair" (§3.2.2.1) because the Hadoop API permits reuse after
//!   emit: a deep clone is charged, nothing else;
//! * **remote** — pairs are serialized with X10's de-duplicating protocol
//!   (§3.2.2.3) into one stream per (source place, destination place) and
//!   moved over the network after the map barrier.

use std::collections::BTreeMap;
use std::marker::PhantomData;
use std::sync::Arc;

use bytes::{Bytes, BytesMut};
use hmr_api::collect::OutputCollector;
use hmr_api::error::{HmrError, Result};
use hmr_api::partition::Partitioner;
use hmr_api::writable::{ByteReader, Writable};
use simgrid::cost::Charge;
use simgrid::meter;
use x10rt::serialize::{DedupMode, Deserializer, SerError, Serializer};

/// Map-task-side collector: partitions emitted pairs, applying the
/// `ImmutableOutput` cloning contract at emit time.
pub struct MapOutputBuffer<K, V> {
    partitioner: Box<dyn Partitioner<K, V>>,
    num_partitions: usize,
    immutable: bool,
    /// Per-partition emitted pairs.
    pub parts: Vec<Vec<(Arc<K>, Arc<V>)>>,
    emitted: u64,
}

impl<K, V> MapOutputBuffer<K, V>
where
    K: Writable + Clone,
    V: Writable + Clone,
{
    /// A buffer for `num_partitions` partitions.
    pub fn new(
        num_partitions: usize,
        partitioner: Box<dyn Partitioner<K, V>>,
        immutable: bool,
    ) -> Self {
        Self::with_capacity_hint(num_partitions, partitioner, immutable, 0)
    }

    /// Like [`MapOutputBuffer::new`], but pre-sizes every partition bucket
    /// assuming `expected_records` spread uniformly — the allocation-churn
    /// fix for the repeated doubling a map task otherwise pays per bucket.
    pub fn with_capacity_hint(
        num_partitions: usize,
        partitioner: Box<dyn Partitioner<K, V>>,
        immutable: bool,
        expected_records: usize,
    ) -> Self {
        let num_partitions = num_partitions.max(1);
        let per_part = expected_records.div_ceil(num_partitions);
        MapOutputBuffer {
            partitioner,
            num_partitions,
            immutable,
            parts: (0..num_partitions)
                .map(|_| Vec::with_capacity(per_part))
                .collect(),
            emitted: 0,
        }
    }

    /// Pairs emitted so far.
    pub fn emitted(&self) -> u64 {
        self.emitted
    }
}

impl<K, V> OutputCollector<K, V> for MapOutputBuffer<K, V>
where
    K: Writable + Clone,
    V: Writable + Clone,
{
    fn collect(&mut self, key: Arc<K>, value: Arc<V>) -> Result<()> {
        let p = self
            .partitioner
            .partition(&key, &value, self.num_partitions);
        if p >= self.num_partitions {
            return Err(HmrError::InvalidJob(format!(
                "partitioner returned {p} for {} partitions",
                self.num_partitions
            )));
        }
        let (key, value) = if self.immutable {
            // §4.1: the job promised not to mutate emitted values; alias.
            (key, value)
        } else {
            // §3.2.2.1: "this forces M3R to conservatively make a copy of
            // every key/value pair."
            let bytes = (key.serialized_size() + value.serialized_size()) as u64;
            meter::charge(Charge::Clone { bytes });
            meter::charge(Charge::Alloc { objects: 2 });
            (Arc::new((*key).clone()), Arc::new((*value).clone()))
        };
        self.parts[p].push((key, value));
        self.emitted += 1;
        Ok(())
    }
}

/// One remote shuffle stream under construction: place *P* → place *Q*,
/// shared by every mapper running at *P* (full de-duplication spans them).
pub struct ShuffleStream {
    ser: Serializer,
}

impl ShuffleStream {
    /// An empty stream using `mode`.
    pub fn new(mode: DedupMode) -> Self {
        ShuffleStream {
            ser: Serializer::new(mode),
        }
    }

    /// A stream writing into `buf` (typically drawn from a
    /// [`simgrid::BufPool`]) so warm capacity is reused across waves.
    pub fn with_buffer(buf: BytesMut, mode: DedupMode) -> Self {
        ShuffleStream {
            ser: Serializer::with_buffer(buf, mode),
        }
    }

    /// Reserve room for `additional` encoded bytes (a `serialized_size`
    /// hint plus framing), so pushes append without re-growing.
    pub fn reserve(&mut self, additional: usize) {
        self.ser.reserve(additional);
    }

    /// Append one `(partition, key, value)` record.
    pub fn push<K: Writable + Send + Sync, V: Writable + Send + Sync>(
        &mut self,
        partition: usize,
        key: &Arc<K>,
        value: &Arc<V>,
    ) {
        self.ser.write_u32(partition as u32);
        self.ser.write_arc_with(key, |k, buf| k.write_to(buf));
        self.ser.write_arc_with(value, |v, buf| v.write_to(buf));
    }

    /// Current encoded length.
    pub fn len(&self) -> usize {
        self.ser.len()
    }

    /// True when nothing has been pushed.
    pub fn is_empty(&self) -> bool {
        self.ser.is_empty()
    }

    /// Finish the stream: a refcounted handle to the encoded bytes plus
    /// stats. The handle is shared (not copied) with every reader; once the
    /// last reader drops it the buffer can return to a pool.
    pub fn finish(self) -> (Bytes, x10rt::serialize::SerStats) {
        self.ser.finish()
    }
}

fn ser_err(e: SerError) -> HmrError {
    HmrError::Serde(e.to_string())
}

fn read_writable<T: Writable, D: AsRef<[u8]>>(
    d: &mut Deserializer<D>,
) -> std::result::Result<T, SerError> {
    let mut br = ByteReader::new(d.rest());
    let v = T::read_from(&mut br).map_err(|e| SerError::Custom(e.to_string()))?;
    let used = br.position();
    d.advance(used)?;
    Ok(v)
}

/// Iterator over the `(partition, key, value)` records of one shuffle
/// stream. Owns a refcount on the stream storage, so records decode
/// straight out of the shared buffer — no intermediate `Vec` of records is
/// ever materialized on the reduce side.
pub struct StreamRecords<K, V> {
    d: Deserializer<Bytes>,
    _marker: PhantomData<fn() -> (K, V)>,
}

impl<K, V> Iterator for StreamRecords<K, V>
where
    K: Writable + Send + Sync,
    V: Writable + Send + Sync,
{
    type Item = Result<(usize, Arc<K>, Arc<V>)>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.d.remaining() == 0 {
            return None;
        }
        let d = &mut self.d;
        let rec = (|| {
            let p = d.read_u32().map_err(ser_err)? as usize;
            let k = d.read_arc_with(read_writable::<K, _>).map_err(ser_err)?;
            let v = d.read_arc_with(read_writable::<V, _>).map_err(ser_err)?;
            Ok((p, k, v))
        })();
        if rec.is_err() {
            // A malformed stream cannot be resynchronized; stop after
            // reporting the error once.
            self.d.poison();
        }
        Some(rec)
    }
}

/// Decode a shuffle stream lazily. Back-references reconstruct aliases: a
/// value broadcast to many partitions decodes into many `Arc`s of one
/// allocation. The iterator holds a refcount on `bytes`; dropping it (and
/// every other handle) lets a pool reclaim the buffer.
pub fn decode_stream<K, V>(bytes: Bytes) -> StreamRecords<K, V>
where
    K: Writable + Send + Sync,
    V: Writable + Send + Sync,
{
    StreamRecords {
        d: Deserializer::new(bytes),
        _marker: PhantomData,
    }
}

/// Modelled heap overhead per distinct key admitted to a combine table
/// (map node + key `Arc` bookkeeping), in bytes.
const COMBINE_ENTRY_OVERHEAD: u64 = 48;
/// Modelled heap overhead per absorbed value (one `Arc` slot), in bytes.
const COMBINE_VALUE_OVERHEAD: u64 = 8;

/// A place-level shared combine table (ROADMAP item 3, after the in-node
/// combiners line of work): one table per *destination* place, fed by every
/// map task of the source place, merging equal keys **across tasks** before
/// the shuffle stream serializes anything. Where per-mapper combining only
/// collapses duplicates within one task's output, this collapses them
/// across the whole map wave — on skewed keys that is where most of the
/// remaining shuffle volume lives.
///
/// Determinism contract: entries are keyed by `(partition, serialized key
/// bytes)` in a `BTreeMap`, so the drain order is partition-ascending then
/// key-bytes-ascending regardless of absorption interleaving; values within
/// one key group stay in arrival order, which the engine guarantees is task
/// order (buckets are absorbed on the place thread in task order). Equal
/// keys therefore tie-break on task order, and the job's combiner must be
/// associative + commutative (see `hmr_api::conf::PLACE_COMBINE`).
pub struct CombineTable<K, V> {
    entries: BTreeMap<(usize, Vec<u8>), (Arc<K>, Vec<Arc<V>>)>,
    bytes: u64,
    records: u64,
}

impl<K, V> Default for CombineTable<K, V>
where
    K: Writable,
    V: Writable,
{
    fn default() -> Self {
        Self::new()
    }
}

impl<K, V> CombineTable<K, V>
where
    K: Writable,
    V: Writable,
{
    /// An empty table.
    pub fn new() -> Self {
        CombineTable {
            entries: BTreeMap::new(),
            bytes: 0,
            records: 0,
        }
    }

    /// True when nothing has been absorbed since the last drain.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Distinct `(partition, key)` groups currently held.
    pub fn groups(&self) -> usize {
        self.entries.len()
    }

    /// Records absorbed since the last drain.
    pub fn records(&self) -> u64 {
        self.records
    }

    /// Approximate live bytes held (serialized key + value sizes plus
    /// modelled per-entry overhead) — what the memory accountant should
    /// carry under `MemClass::Combine`.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Absorb one `(partition, key, value)` record, merging it into the
    /// group of any previously absorbed equal key. Returns `(grew_bytes,
    /// key_bytes)`: how many accountable bytes the table grew by, and the
    /// encoded key length (the serialization work the caller should bill
    /// for admission).
    pub fn absorb(&mut self, partition: usize, key: &Arc<K>, value: &Arc<V>) -> (u64, u64) {
        let mut kbytes = Vec::with_capacity(key.serialized_size());
        key.write_to(&mut kbytes);
        let klen = kbytes.len() as u64;
        let vlen = value.serialized_size() as u64;
        let grew = match self.entries.entry((partition, kbytes)) {
            std::collections::btree_map::Entry::Occupied(mut e) => {
                e.get_mut().1.push(Arc::clone(value));
                vlen + COMBINE_VALUE_OVERHEAD
            }
            std::collections::btree_map::Entry::Vacant(e) => {
                e.insert((Arc::clone(key), vec![Arc::clone(value)]));
                klen + COMBINE_ENTRY_OVERHEAD + vlen + COMBINE_VALUE_OVERHEAD
            }
        };
        self.bytes += grew;
        self.records += 1;
        (grew, klen)
    }

    /// Drain every group in deterministic order — partition ascending, then
    /// serialized key bytes ascending; each group's values in arrival (task)
    /// order — resetting the table to empty.
    pub fn drain(&mut self) -> impl Iterator<Item = (usize, Arc<K>, Vec<Arc<V>>)> {
        self.bytes = 0;
        self.records = 0;
        std::mem::take(&mut self.entries)
            .into_iter()
            .map(|((p, _), (k, vs))| (p, k, vs))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hmr_api::partition::FnPartitioner;
    use hmr_api::writable::{BytesWritable, IntWritable};

    fn modulo_partitioner() -> Box<dyn Partitioner<IntWritable, BytesWritable>> {
        Box::new(FnPartitioner::new(|k: &IntWritable, _: &BytesWritable, n| {
            k.0 as usize % n
        }))
    }

    #[test]
    fn immutable_buffer_aliases() {
        let mut buf = MapOutputBuffer::new(4, modulo_partitioner(), true);
        let k = Arc::new(IntWritable(5));
        let v = Arc::new(BytesWritable(vec![1, 2, 3]));
        buf.collect(Arc::clone(&k), Arc::clone(&v)).unwrap();
        assert!(Arc::ptr_eq(&buf.parts[1][0].0, &k));
        assert!(Arc::ptr_eq(&buf.parts[1][0].1, &v));
    }

    #[test]
    fn mutable_buffer_copies_and_charges() {
        let cluster = simgrid::Cluster::new(1, simgrid::CostModel::default());
        let k = Arc::new(IntWritable(5));
        let v = Arc::new(BytesWritable(vec![1, 2, 3]));
        let before = cluster.metrics().snapshot();
        simgrid::with_meter(simgrid::Meter::new(cluster.node(0).clone()), || {
            let mut buf = MapOutputBuffer::new(4, modulo_partitioner(), false);
            buf.collect(Arc::clone(&k), Arc::clone(&v)).unwrap();
            assert!(!Arc::ptr_eq(&buf.parts[1][0].0, &k), "defensive copy");
            assert_eq!(*buf.parts[1][0].1, *v, "copy equals the original");
        });
        let d = cluster.metrics().snapshot().since(&before);
        assert!(d.clone_bytes > 0, "clone cost charged");
        assert_eq!(d.allocs, 2);
        assert_eq!(d.ser_bytes, 0, "local path never serializes");
    }

    #[test]
    fn stream_roundtrip_with_partitions() {
        let mut s = ShuffleStream::new(DedupMode::Off);
        for i in 0..10 {
            s.push(
                i % 3,
                &Arc::new(IntWritable(i as i32)),
                &Arc::new(BytesWritable(vec![i as u8])),
            );
        }
        let (bytes, _) = s.finish();
        let recs: Vec<_> = decode_stream::<IntWritable, BytesWritable>(bytes)
            .collect::<Result<_>>()
            .unwrap();
        assert_eq!(recs.len(), 10);
        for (i, (p, k, v)) in recs.iter().enumerate() {
            assert_eq!(*p, i % 3);
            assert_eq!(k.0, i as i32);
            assert_eq!(v.0, vec![i as u8]);
        }
    }

    #[test]
    fn broadcast_value_deduplicates_and_aliases_on_arrival() {
        // The matvec broadcast idiom: one V block sent to every partition.
        let v = Arc::new(BytesWritable(vec![9u8; 1000]));
        let mut s = ShuffleStream::new(DedupMode::Full);
        for p in 0..20 {
            s.push(p, &Arc::new(IntWritable(p as i32)), &v);
        }
        let (bytes, stats) = s.finish();
        assert_eq!(stats.dedup_hits, 19, "19 of 20 copies replaced by backrefs");
        assert!(
            (bytes.len() as u64) < 2_200,
            "~1 payload + framing, got {}",
            bytes.len()
        );
        let recs: Vec<_> = decode_stream::<IntWritable, BytesWritable>(bytes)
            .collect::<Result<_>>()
            .unwrap();
        assert_eq!(recs.len(), 20);
        for w in recs.windows(2) {
            assert!(
                Arc::ptr_eq(&w[0].2, &w[1].2),
                "receiver holds aliases of one copy"
            );
        }
    }

    #[test]
    fn consecutive_mode_still_catches_broadcast_loops() {
        // §6.3's proposed fix: the broadcast value repeats with only a
        // fresh key between occurrences, which the sliding window catches —
        // while memory stays O(1) instead of O(values sent).
        let v = Arc::new(BytesWritable(vec![7u8; 500]));
        let mut s = ShuffleStream::new(DedupMode::Consecutive);
        for p in 0..10 {
            s.push(p, &Arc::new(IntWritable(p as i32)), &v);
        }
        let (bytes, stats) = s.finish();
        assert_eq!(stats.dedup_hits, 9, "value sent once, 9 backrefs");
        assert!(stats.values_retained <= 4, "O(1) retention");
        let recs: Vec<_> = decode_stream::<IntWritable, BytesWritable>(bytes)
            .collect::<Result<_>>()
            .unwrap();
        assert_eq!(recs.len(), 10);
        for w in recs.windows(2) {
            assert!(Arc::ptr_eq(&w[0].2, &w[1].2));
        }
    }

    #[test]
    fn truncated_stream_is_an_error() {
        let mut s = ShuffleStream::new(DedupMode::Off);
        s.push(0, &Arc::new(IntWritable(1)), &Arc::new(BytesWritable(vec![1])));
        let (bytes, _) = s.finish();
        let bytes = bytes.slice(..bytes.len() - 1);
        let res: Result<Vec<_>> =
            decode_stream::<IntWritable, BytesWritable>(bytes).collect();
        assert!(res.is_err());
    }

    #[test]
    fn combine_table_merges_and_drains_deterministically() {
        let mut t: CombineTable<IntWritable, IntWritable> = CombineTable::new();
        // Absorb in a scrambled order; equal keys across "tasks" merge.
        t.absorb(1, &Arc::new(IntWritable(9)), &Arc::new(IntWritable(100)));
        t.absorb(0, &Arc::new(IntWritable(4)), &Arc::new(IntWritable(1)));
        t.absorb(1, &Arc::new(IntWritable(9)), &Arc::new(IntWritable(200)));
        t.absorb(0, &Arc::new(IntWritable(2)), &Arc::new(IntWritable(7)));
        t.absorb(0, &Arc::new(IntWritable(4)), &Arc::new(IntWritable(2)));
        assert_eq!(t.records(), 5);
        assert_eq!(t.groups(), 3);
        let drained: Vec<_> = t
            .drain()
            .map(|(p, k, vs)| (p, k.0, vs.iter().map(|v| v.0).collect::<Vec<_>>()))
            .collect();
        // Partition-ascending, then key-bytes-ascending; values in arrival
        // (task) order within each group.
        assert_eq!(
            drained,
            vec![
                (0, 2, vec![7]),
                (0, 4, vec![1, 2]),
                (1, 9, vec![100, 200]),
            ]
        );
        assert!(t.is_empty(), "drain resets the table");
        assert_eq!(t.bytes(), 0);
        assert_eq!(t.records(), 0);
    }

    #[test]
    fn combine_table_byte_accounting_grows_per_absorb() {
        let mut t: CombineTable<IntWritable, BytesWritable> = CombineTable::new();
        let k = Arc::new(IntWritable(1));
        let (g1, klen) = t.absorb(0, &k, &Arc::new(BytesWritable(vec![0u8; 10])));
        assert_eq!(klen, k.serialized_size() as u64);
        assert!(g1 > 10, "first absorb pays key + entry overhead");
        let (g2, _) = t.absorb(0, &k, &Arc::new(BytesWritable(vec![0u8; 10])));
        assert!(g2 < g1, "merging into an existing group is cheaper");
        assert_eq!(t.bytes(), g1 + g2);
    }

    #[test]
    fn bad_partition_from_partitioner_is_rejected() {
        let mut buf: MapOutputBuffer<IntWritable, BytesWritable> = MapOutputBuffer::new(
            2,
            Box::new(FnPartitioner::new(|_: &IntWritable, _: &BytesWritable, _| 7)),
            true,
        );
        assert!(buf
            .collect(Arc::new(IntWritable(0)), Arc::new(BytesWritable(vec![])))
            .is_err());
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use hmr_api::writable::{BytesWritable, IntWritable};
    use proptest::prelude::*;

    fn mode_strategy() -> impl Strategy<Value = DedupMode> {
        prop_oneof![
            Just(DedupMode::Full),
            Just(DedupMode::Consecutive),
            Just(DedupMode::Off),
        ]
    }

    proptest! {
        /// Streams decode back to exactly what was pushed, in order, for
        /// every de-duplication mode and any aliasing pattern (shared Arcs
        /// simulate broadcast reuse).
        #[test]
        fn stream_roundtrips_under_all_modes(
            records in proptest::collection::vec(
                (0usize..8, 0u8..4, proptest::collection::vec(any::<u8>(), 0..16)),
                0..80,
            ),
            mode in mode_strategy(),
        ) {
            // A small pool of shared values: index 0..4 alias each other.
            let pool: Vec<Arc<BytesWritable>> = (0..4)
                .map(|i| Arc::new(BytesWritable(vec![i as u8; 8])))
                .collect();
            let mut stream = ShuffleStream::new(mode);
            let mut expect = Vec::new();
            for (p, pool_idx, fresh) in &records {
                // Alternate between pooled (aliased) and fresh values.
                let value = if fresh.is_empty() {
                    Arc::clone(&pool[*pool_idx as usize])
                } else {
                    Arc::new(BytesWritable(fresh.clone()))
                };
                let key = Arc::new(IntWritable(*p as i32));
                stream.push(*p, &key, &value);
                expect.push((*p, key.0, value.0.clone()));
            }
            let (bytes, stats) = stream.finish();
            let decoded: Vec<_> = decode_stream::<IntWritable, BytesWritable>(bytes)
                .collect::<Result<_>>()
                .unwrap();
            prop_assert_eq!(decoded.len(), expect.len());
            for ((p, k, v), (ep, ek, ev)) in decoded.iter().zip(&expect) {
                prop_assert_eq!(p, ep);
                prop_assert_eq!(k.0, *ek);
                prop_assert_eq!(&v.0, ev);
            }
            // Dedup can only ever shrink the stream.
            if mode == DedupMode::Off {
                prop_assert_eq!(stats.dedup_hits, 0);
            }
        }

        /// Full de-duplication never sends more payload bytes than Off.
        #[test]
        fn full_dedup_never_larger(
            repeats in 1usize..40,
        ) {
            let v = Arc::new(BytesWritable(vec![7u8; 64]));
            let sizes: Vec<u64> = [DedupMode::Full, DedupMode::Off]
                .iter()
                .map(|mode| {
                    let mut s = ShuffleStream::new(*mode);
                    for i in 0..repeats {
                        s.push(i % 4, &Arc::new(IntWritable(i as i32)), &v);
                    }
                    s.finish().1.total_bytes
                })
                .collect();
            prop_assert!(sizes[0] <= sizes[1]);
        }
    }
}
