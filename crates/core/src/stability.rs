//! Partition stability (paper §3.2.2.2, §4.3).
//!
//! "M3R provides programs with the following partition stability guarantee:
//! for a given number of reducers, the mapping from partitions to places is
//! deterministic." Hadoop deliberately withholds this (it wants freedom to
//! restart reducers elsewhere); M3R trades that freedom for locality.
//!
//! [`PlaceMap::Unstable`] models Hadoop's dynamic behaviour for ablation
//! benches: a per-job pseudo-random assignment, so consecutive jobs send
//! the "same" partition to different places and locality-aware algorithms
//! lose their guarantee.

/// How partitions map to places.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PlaceMap {
    /// The M3R guarantee: partition `p` always lives at place `p % places`.
    Stable,
    /// Ablation: a deterministic but per-job-different scramble, seeded by
    /// the job's sequence number — Hadoop's "assignment of partitions to
    /// hosts is very different \[arbitrary\]" (§6.1.1).
    Unstable {
        /// Sequence number of the job (engine-maintained).
        job_seq: u64,
    },
}

impl PlaceMap {
    /// The place that runs partition `p`'s reducer (and caches its output).
    pub fn place_of(&self, partition: usize, places: usize) -> usize {
        debug_assert!(places >= 1);
        match self {
            PlaceMap::Stable => partition % places,
            PlaceMap::Unstable { job_seq } => {
                // splitmix64-style scramble of (partition, job_seq).
                let mut x = (partition as u64)
                    .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                    .wrapping_add(job_seq.wrapping_mul(0xBF58_476D_1CE4_E5B9));
                x ^= x >> 30;
                x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
                x ^= x >> 27;
                (x % places as u64) as usize
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stable_map_is_deterministic_across_jobs() {
        for p in 0..100 {
            assert_eq!(
                PlaceMap::Stable.place_of(p, 7),
                PlaceMap::Stable.place_of(p, 7)
            );
            assert_eq!(PlaceMap::Stable.place_of(p, 7), p % 7);
        }
    }

    #[test]
    fn unstable_map_changes_between_jobs() {
        let a = PlaceMap::Unstable { job_seq: 1 };
        let b = PlaceMap::Unstable { job_seq: 2 };
        let moved = (0..64)
            .filter(|&p| a.place_of(p, 8) != b.place_of(p, 8))
            .count();
        assert!(moved > 16, "most partitions should move between jobs: {moved}");
    }

    #[test]
    fn unstable_map_is_deterministic_within_a_job() {
        let m = PlaceMap::Unstable { job_seq: 42 };
        for p in 0..64 {
            assert_eq!(m.place_of(p, 8), m.place_of(p, 8));
        }
    }

    #[test]
    fn all_places_in_range() {
        for places in 1..10 {
            for p in 0..50 {
                assert!(PlaceMap::Stable.place_of(p, places) < places);
                assert!(
                    PlaceMap::Unstable { job_seq: 9 }.place_of(p, places) < places
                );
            }
        }
    }
}
