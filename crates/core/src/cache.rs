//! The input/output key/value cache (paper §3.2.1), built on the
//! distributed [`kvstore`] of §5.2.
//!
//! "Before passing it to the mapper, M3R caches the key/value pairs in
//! memory (associated with the input file name). In a subsequent job, when
//! the same input is requested, M3R will bypass the provided RecordReader
//! and obtain the required key/value sequence directly from the cache."
//! Output sequences are cached the same way under the output part file's
//! name; temporary outputs (§4.2.3) live *only* here.
//!
//! Entries are typed: a sequence cached as `(K, V)` can only be served to a
//! consumer expecting `(K, V)` — a type mismatch silently degrades to a
//! cache bypass, mirroring how M3R bypasses the cache for splits it cannot
//! name or understand.

use std::sync::Arc;

use kvstore::{KPath, KvError, KvStore};
use simgrid::trace;

use hmr_api::fs::HPath;

/// A cached key/value sequence: `Arc`-shared pairs, exactly what flows
/// through the engine. Aliasing the `Arc`s is what makes cache hits free.
pub struct CachedSeq<K, V> {
    /// The cached pairs in file order.
    pub pairs: Vec<(Arc<K>, Arc<V>)>,
}

impl<K, V> CachedSeq<K, V> {
    /// Wrap a pair sequence.
    pub fn new(pairs: Vec<(Arc<K>, Arc<V>)>) -> Self {
        CachedSeq { pairs }
    }
}

/// Block metadata stored in the kvstore: the byte length the entry stands
/// for (which must match the file length the caching filesystem reports,
/// so split names line up) and the number of records.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CacheMeta {
    /// Serialized byte length of the sequence (the "file size").
    pub len: u64,
    /// Number of key/value pairs.
    pub records: u64,
}

/// A cache hit.
pub struct CacheHit<K, V> {
    /// The cached sequence.
    pub seq: Arc<CachedSeq<K, V>>,
    /// The place whose data table holds it.
    pub place: usize,
    /// Entry metadata.
    pub meta: CacheMeta,
}

/// The typed facade over the kvstore used by the engine and the caching
/// filesystem.
#[derive(Clone)]
pub struct KvCache {
    store: KvStore<CacheMeta>,
}

fn kpath(path: &HPath) -> KPath {
    KPath::new(path.as_str())
}

impl KvCache {
    /// A cache sharded over `places`.
    pub fn new(places: usize) -> Self {
        KvCache {
            store: KvStore::new(places),
        }
    }

    /// Number of places.
    pub fn num_places(&self) -> usize {
        self.store.num_places()
    }

    /// Cache `seq` for `path` at `place`. Replaces any previous entry for
    /// the path (the path's block list is reduced to this one entry).
    pub fn put_seq<K: Send + Sync + 'static, V: Send + Sync + 'static>(
        &self,
        place: usize,
        path: &HPath,
        seq: Arc<CachedSeq<K, V>>,
        len: u64,
    ) {
        let records = seq.pairs.len() as u64;
        let kp = kpath(path);
        // Drop any stale entry first so the file holds exactly one block.
        let _ = self.store.delete(&kp);
        self.store
            .write_block(place, &kp, CacheMeta { len, records }, seq, len)
            .expect("cache path cannot collide after delete");
        trace::mark(trace::Phase::Cache, "cache_put", None);
    }

    /// Typed lookup. `expected_len` (from a split's byte range) guards
    /// against stale entries; pass `None` to accept any length.
    pub fn get_seq<K: Send + Sync + 'static, V: Send + Sync + 'static>(
        &self,
        path: &HPath,
        expected_len: Option<u64>,
    ) -> Option<CacheHit<K, V>> {
        let hit = self.lookup_seq(path, expected_len);
        trace::mark(
            trace::Phase::Cache,
            if hit.is_some() { "cache_hit" } else { "cache_miss" },
            None,
        );
        hit
    }

    fn lookup_seq<K: Send + Sync + 'static, V: Send + Sync + 'static>(
        &self,
        path: &HPath,
        expected_len: Option<u64>,
    ) -> Option<CacheHit<K, V>> {
        let info = self.store.get_info(&kpath(path)).ok()?;
        let block = info.blocks.first()?;
        if let Some(len) = expected_len {
            if block.info.len != len {
                return None;
            }
        }
        let data = self.store.create_reader(&kpath(path), &block.info).ok()?;
        let seq = data.downcast::<CachedSeq<K, V>>().ok()?;
        Some(CacheHit {
            seq,
            place: block.place,
            meta: block.info.clone(),
        })
    }

    /// Untyped metadata lookup: is `path` cached, and where/how big?
    pub fn status(&self, path: &HPath) -> Option<CacheMeta> {
        let info = self.store.get_info(&kpath(path)).ok()?;
        match info.kind {
            kvstore::PathKind::File => info.blocks.first().map(|b| b.info.clone()),
            kvstore::PathKind::Dir => Some(CacheMeta { len: 0, records: 0 }),
        }
    }

    /// True when `path` is a cached directory.
    pub fn is_dir(&self, path: &HPath) -> bool {
        matches!(
            self.store.get_info(&kpath(path)).map(|i| i.kind),
            Ok(kvstore::PathKind::Dir)
        )
    }

    /// The place holding `path`'s cached data, if any.
    pub fn place_of(&self, path: &HPath) -> Option<usize> {
        let info = self.store.get_info(&kpath(path)).ok()?;
        info.blocks.first().map(|b| b.place)
    }

    /// Cached children of a directory path.
    pub fn list(&self, dir: &HPath) -> Vec<(HPath, CacheMeta)> {
        let Ok(children) = self.store.list(&kpath(dir)) else {
            return Vec::new();
        };
        children
            .into_iter()
            .filter_map(|c| {
                let p = HPath::new(c.as_str());
                self.status(&p).map(|m| (p, m))
            })
            .collect()
    }

    /// Remove `path` (file or subtree) from the cache. §3.2.1: "deleting a
    /// file from the filesystem causes it to be transparently removed from
    /// the cache."
    pub fn delete(&self, path: &HPath) -> bool {
        self.store.delete(&kpath(path)).unwrap_or(false)
    }

    /// Rename within the cache (keeps data at its place).
    pub fn rename(&self, src: &HPath, dst: &HPath) -> Result<(), KvError> {
        self.store.rename(&kpath(src), &kpath(dst))
    }

    /// Whether anything is cached under `path`.
    pub fn contains(&self, path: &HPath) -> bool {
        self.store.exists(&kpath(path))
    }

    /// Total cached weight in bytes (memory-pressure observability; the
    /// paper's §6.1 benchmark explicitly deletes consumed inputs "as \[their\]
    /// presence in the cache wastes memory").
    pub fn total_bytes(&self) -> u64 {
        self.store.total_weight()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hmr_api::writable::{IntWritable, Text};

    fn seq(n: i32) -> Arc<CachedSeq<IntWritable, Text>> {
        Arc::new(CachedSeq::new(
            (0..n)
                .map(|i| {
                    (
                        Arc::new(IntWritable(i)),
                        Arc::new(Text::from(format!("v{i}"))),
                    )
                })
                .collect(),
        ))
    }

    #[test]
    fn put_get_roundtrip_with_aliasing() {
        let cache = KvCache::new(4);
        let p = HPath::new("/out/part-00000");
        let s = seq(3);
        cache.put_seq(2, &p, Arc::clone(&s), 100);
        let hit = cache.get_seq::<IntWritable, Text>(&p, Some(100)).unwrap();
        assert_eq!(hit.place, 2);
        assert_eq!(hit.meta.records, 3);
        assert!(Arc::ptr_eq(&hit.seq, &s), "cache returns the same sequence");
    }

    #[test]
    fn length_mismatch_is_a_miss() {
        let cache = KvCache::new(2);
        let p = HPath::new("/f");
        cache.put_seq(0, &p, seq(1), 10);
        assert!(cache.get_seq::<IntWritable, Text>(&p, Some(11)).is_none());
        assert!(cache.get_seq::<IntWritable, Text>(&p, Some(10)).is_some());
        assert!(cache.get_seq::<IntWritable, Text>(&p, None).is_some());
    }

    #[test]
    fn type_mismatch_is_a_miss_not_an_error() {
        let cache = KvCache::new(2);
        let p = HPath::new("/f");
        cache.put_seq(0, &p, seq(1), 10);
        // A consumer expecting (Text, Text) simply bypasses the cache.
        assert!(cache.get_seq::<Text, Text>(&p, Some(10)).is_none());
    }

    #[test]
    fn replacement_updates_entry() {
        let cache = KvCache::new(2);
        let p = HPath::new("/f");
        cache.put_seq(0, &p, seq(1), 10);
        cache.put_seq(1, &p, seq(5), 50);
        let hit = cache.get_seq::<IntWritable, Text>(&p, None).unwrap();
        assert_eq!(hit.meta.records, 5);
        assert_eq!(hit.place, 1);
        assert_eq!(cache.total_bytes(), 50, "old entry weight reclaimed");
    }

    #[test]
    fn delete_and_rename_maintain_cache() {
        let cache = KvCache::new(2);
        cache.put_seq(0, &HPath::new("/out/temp_1/part-00000"), seq(2), 20);
        cache.put_seq(1, &HPath::new("/out/temp_1/part-00001"), seq(2), 20);
        cache
            .rename(&HPath::new("/out/temp_1"), &HPath::new("/out/final"))
            .unwrap();
        assert!(cache.contains(&HPath::new("/out/final/part-00001")));
        assert_eq!(cache.place_of(&HPath::new("/out/final/part-00001")), Some(1));
        assert!(cache.delete(&HPath::new("/out/final")));
        assert_eq!(cache.total_bytes(), 0);
    }

    #[test]
    fn list_cached_directory() {
        let cache = KvCache::new(2);
        cache.put_seq(0, &HPath::new("/d/a"), seq(1), 5);
        cache.put_seq(0, &HPath::new("/d/b"), seq(1), 7);
        let mut ls = cache.list(&HPath::new("/d"));
        ls.sort_by(|a, b| a.0.cmp(&b.0));
        assert_eq!(ls.len(), 2);
        assert_eq!(ls[1].1.len, 7);
    }
}
