//! The input/output key/value cache (paper §3.2.1), built on the
//! distributed [`kvstore`] of §5.2 — now governed by the `m3r-mem`
//! memory-accounting subsystem.
//!
//! "Before passing it to the mapper, M3R caches the key/value pairs in
//! memory (associated with the input file name). In a subsequent job, when
//! the same input is requested, M3R will bypass the provided RecordReader
//! and obtain the required key/value sequence directly from the cache."
//! Output sequences are cached the same way under the output part file's
//! name; temporary outputs (§4.2.3) live *only* here.
//!
//! Entries are typed: a sequence cached as `(K, V)` can only be served to a
//! consumer expecting `(K, V)` — a type mismatch silently degrades to a
//! cache bypass, mirroring how M3R bypasses the cache for splits it cannot
//! name or understand.
//!
//! ## Memory governance
//!
//! Every entry's bytes are reported to a [`MemAccountant`]
//! ([`simgrid::MemClass::Cache`]), making the accountant the single source
//! of truth for cache footprint ([`KvCache::total_bytes`] reads it). A
//! cache built with [`KvCache::governed`] additionally enforces the
//! accountant's per-place budget: when a put (or reload) pushes a place
//! over budget, an [`EvictionPolicy`] picks victims deterministically
//! (ties break on insertion order — never wall clock or thread schedule)
//! and each victim is *spilled*: its pairs are serialized through the
//! entry's captured codec and written to the spill filesystem through the
//! normal cost model, while the kv-store keeps a marker block with the
//! original metadata so the entry stays visible to the caching
//! filesystem. The next `get_seq` faults the entry back in (paying the
//! disk read + deserialize), re-admitting it as the newest entry. Under
//! [`OomMode::FailFast`] the cache errors instead of spilling — the
//! paper's "must fit in memory" contract, verbatim.

use std::collections::{BTreeMap, HashMap, HashSet};
use std::sync::Arc;

use kvstore::policy::{EvictionPolicy, PolicyKind};
use kvstore::{BlockData, KPath, KvError, KvStore};
use parking_lot::Mutex;
use simgrid::mem::{MemAccountant, MemClass, OomMode};
use simgrid::{meter, trace, Charge};

use hmr_api::error::{HmrError, Result};
use hmr_api::fs::{read_file, write_file, FileSystem, HPath};
use hmr_api::writable::{write_vu64, ByteReader, Writable};

/// A cached key/value sequence: `Arc`-shared pairs, exactly what flows
/// through the engine. Aliasing the `Arc`s is what makes cache hits free.
pub struct CachedSeq<K, V> {
    /// The cached pairs in file order.
    pub pairs: Vec<(Arc<K>, Arc<V>)>,
}

impl<K, V> CachedSeq<K, V> {
    /// Wrap a pair sequence.
    pub fn new(pairs: Vec<(Arc<K>, Arc<V>)>) -> Self {
        CachedSeq { pairs }
    }
}

/// Block metadata stored in the kvstore: the byte length the entry stands
/// for (which must match the file length the caching filesystem reports,
/// so split names line up) and the number of records.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CacheMeta {
    /// Serialized byte length of the sequence (the "file size").
    pub len: u64,
    /// Number of key/value pairs.
    pub records: u64,
}

/// A cache hit.
pub struct CacheHit<K, V> {
    /// The cached sequence.
    pub seq: Arc<CachedSeq<K, V>>,
    /// The place whose data table holds it.
    pub place: usize,
    /// Entry metadata.
    pub meta: CacheMeta,
}

/// Replaces an evicted entry's data in the kv-store. The block's metadata
/// (and thus the file's visible length) is untouched, so the caching
/// filesystem still stats and lists the entry; only a typed read faults
/// it back in.
#[derive(Debug)]
struct SpilledMarker;

/// Typed spill codec captured at `put_seq` time, when the concrete `K`/`V`
/// are statically known. `encode` downcasts the stored block and writes
/// `count, (k, v)*` in `Writable` wire form; `decode` reverses it. `Arc`
/// aliasing across entries is lost on reload — each reloaded pair gets
/// fresh `Arc`s — which costs memory, not correctness.
#[derive(Clone)]
struct Codec {
    encode: Arc<dyn Fn(&BlockData) -> Option<Vec<u8>> + Send + Sync>,
    decode: Arc<dyn Fn(&[u8]) -> Result<BlockData> + Send + Sync>,
}

impl Codec {
    fn of<K: Writable, V: Writable>() -> Codec {
        Codec {
            encode: Arc::new(|data: &BlockData| {
                let seq = Arc::clone(data).downcast::<CachedSeq<K, V>>().ok()?;
                let mut buf = Vec::new();
                write_vu64(&mut buf, seq.pairs.len() as u64);
                for (k, v) in &seq.pairs {
                    k.write_to(&mut buf);
                    v.write_to(&mut buf);
                }
                Some(buf)
            }),
            decode: Arc::new(|bytes: &[u8]| {
                let mut r = ByteReader::new(bytes);
                let n = r.read_vu64()?;
                let mut pairs = Vec::with_capacity(n as usize);
                for _ in 0..n {
                    let k = K::read_from(&mut r)?;
                    let v = V::read_from(&mut r)?;
                    pairs.push((Arc::new(k), Arc::new(v)));
                }
                Ok(Arc::new(CachedSeq::<K, V>::new(pairs)) as BlockData)
            }),
        }
    }
}

/// Governor bookkeeping for one cache entry.
struct Entry {
    /// Insertion ordinal; fresh per (re-)admission. Policies key on it.
    id: u64,
    place: usize,
    /// Accounted bytes (the entry's `len`).
    bytes: u64,
    meta: CacheMeta,
    /// False while the pairs live only in the spill file.
    resident: bool,
    spill_path: Option<HPath>,
    codec: Codec,
    /// The tenant (interned client id) whose job produced this entry, when
    /// the put came through the §5.3 job server. Quota enforcement charges
    /// the entry's bytes to this tenant.
    owner: Option<u32>,
    /// Times this entry has faulted back in from its spill file. An entry
    /// reloading for the second or later time is *hot*: the working set
    /// wants it, and evicting it as-newest again is likely to thrash.
    reloads: u32,
}

/// Per-place thrash detector for speculative re-admission (ISSUE 8):
/// cumulative reload traffic is compared against the place budget, and each
/// time a budget's worth of bytes has faulted back in, the detector trips —
/// evidence that eviction is cycling the working set rather than shedding
/// cold data. After the first trip, hot reloads (see [`Entry::reloads`])
/// are re-admitted *promoted and pinned* instead of merely as-newest.
#[derive(Clone, Copy, Debug, Default)]
struct ThrashState {
    /// Reload bytes accumulated toward the next trip.
    window_bytes: u64,
    /// Completed trips (windows of reload traffic exceeding the budget).
    trips: u64,
}

/// Mutable governor state, held under one lock across each cache
/// operation so policy bookkeeping, accounting and store mutation can
/// never interleave. The kv-store's own locks never call back up into
/// the governor, so lock order is strictly governor → store.
struct GovState {
    /// One policy instance per place: budgets are per-place, so victim
    /// selection at one place must not disturb recency state at another.
    policies: Vec<Box<dyn EvictionPolicy>>,
    entries: HashMap<HPath, Entry>,
    by_id: HashMap<u64, HPath>,
    next_id: u64,
    /// Interned tenant names; a tenant's id is its index here. Interning
    /// order is submission order under the job server, so iteration by id
    /// is deterministic.
    tenants: Vec<String>,
    /// Per-tenant resident-byte quotas (total across places), keyed by
    /// interned id. `BTreeMap` so quota enforcement visits tenants in a
    /// fixed order.
    quotas: BTreeMap<u32, u64>,
    /// One thrash detector per place (speculative re-admission).
    thrash: Vec<ThrashState>,
}

impl GovState {
    fn admit(&mut self, path: HPath, entry_place: usize, bytes: u64) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        self.by_id.insert(id, path);
        self.policies[entry_place].on_insert(id, bytes);
        id
    }

    fn intern(&mut self, tenant: &str) -> u32 {
        if let Some(i) = self.tenants.iter().position(|t| t == tenant) {
            return i as u32;
        }
        self.tenants.push(tenant.to_string());
        (self.tenants.len() - 1) as u32
    }

    fn tenant_id(&self, tenant: &str) -> Option<u32> {
        self.tenants.iter().position(|t| t == tenant).map(|i| i as u32)
    }
}

/// Where evicted entries spill to.
struct SpillTarget {
    /// The *raw* filesystem (never a `CachingFs`, whose `create` would
    /// re-enter the cache to invalidate the path being spilled).
    fs: Arc<dyn FileSystem>,
    root: HPath,
}

/// The typed facade over the kvstore used by the engine and the caching
/// filesystem.
#[derive(Clone)]
pub struct KvCache {
    store: KvStore<CacheMeta>,
    mem: MemAccountant,
    state: Arc<Mutex<GovState>>,
    spill: Option<Arc<SpillTarget>>,
}

fn kpath(path: &HPath) -> KPath {
    KPath::new(path.as_str())
}

impl KvCache {
    /// A cache sharded over `places`, accounted but ungoverned: bytes are
    /// tallied (so [`KvCache::total_bytes`] works) against a private
    /// accountant with an infinite budget, and nothing ever evicts.
    pub fn new(places: usize) -> Self {
        Self::build(places, MemAccountant::new(places), None, PolicyKind::default())
    }

    /// A cache governed by `mem`'s per-place budget: entries that push a
    /// place over budget are evicted by `policy` and spilled to
    /// `spill_fs` under `/.m3r-spill`, or the cache errors when `mem` is
    /// in [`OomMode::FailFast`]. `spill_fs` must be the raw filesystem,
    /// not the caching wrapper (see `SpillTarget::fs`).
    pub fn governed(
        places: usize,
        mem: MemAccountant,
        spill_fs: Arc<dyn FileSystem>,
        policy: PolicyKind,
    ) -> Self {
        let spill = Some(Arc::new(SpillTarget {
            fs: spill_fs,
            root: HPath::new("/.m3r-spill"),
        }));
        Self::build(places, mem, spill, policy)
    }

    fn build(
        places: usize,
        mem: MemAccountant,
        spill: Option<Arc<SpillTarget>>,
        policy: PolicyKind,
    ) -> Self {
        KvCache {
            store: KvStore::new(places),
            mem,
            state: Arc::new(Mutex::new(GovState {
                policies: (0..places).map(|_| policy.build()).collect(),
                entries: HashMap::new(),
                by_id: HashMap::new(),
                next_id: 0,
                tenants: Vec::new(),
                quotas: BTreeMap::new(),
                thrash: (0..places).map(|_| ThrashState::default()).collect(),
            })),
            spill,
        }
    }

    /// Number of places.
    pub fn num_places(&self) -> usize {
        self.store.num_places()
    }

    /// The memory accountant this cache reports to.
    pub fn mem(&self) -> &MemAccountant {
        &self.mem
    }

    /// Cache `seq` for `path` at `place`. Replaces any previous entry for
    /// the path (the path's block list is reduced to this one entry).
    /// Errors only under a finite budget in [`OomMode::FailFast`] when
    /// the put overflows `place`'s budget.
    pub fn put_seq<K: Writable, V: Writable>(
        &self,
        place: usize,
        path: &HPath,
        seq: Arc<CachedSeq<K, V>>,
        len: u64,
    ) -> Result<()> {
        self.put_seq_for(place, path, seq, len, None)
    }

    /// [`KvCache::put_seq`] with tenant attribution: when `owner` is given,
    /// the entry's bytes count against that client's residency quota (if
    /// one is set). The job server stamps `m3r.client.id` into submitted
    /// confs and the engine threads it through to here.
    pub fn put_seq_for<K: Writable, V: Writable>(
        &self,
        place: usize,
        path: &HPath,
        seq: Arc<CachedSeq<K, V>>,
        len: u64,
        owner: Option<&str>,
    ) -> Result<()> {
        let records = seq.pairs.len() as u64;
        let kp = kpath(path);
        let mut st = self.state.lock();
        self.forget_locked(&mut st, path);
        // Drop any stale entry first so the file holds exactly one block.
        let _ = self.store.delete(&kp);
        self.store
            .write_block(place, &kp, CacheMeta { len, records }, seq, len)
            .expect("cache path cannot collide after delete");
        let codec = Codec::of::<K, V>();
        let owner = owner.map(|t| st.intern(t));
        let id = st.admit(path.clone(), place, len);
        st.entries.insert(
            path.clone(),
            Entry {
                id,
                place,
                bytes: len,
                meta: CacheMeta { len, records },
                resident: true,
                spill_path: None,
                codec,
                owner,
                reloads: 0,
            },
        );
        self.mem.grow(place, MemClass::Cache, len);
        trace::mark(trace::Phase::Cache, "cache_put", None);
        self.enforce_locked(&mut st)
    }

    /// Set (or clear with `None`) `client`'s resident-byte quota — the
    /// total cached bytes its jobs' entries may keep resident across all
    /// places. Requires a spill target (a governed cache); ungoverned
    /// caches ignore quotas. Setting a quota below current residency
    /// triggers immediate quota-priority eviction in [`OomMode::Spill`].
    pub fn set_client_quota(&self, client: &str, quota: Option<u64>) {
        let mut st = self.state.lock();
        let tenant = st.intern(client);
        match quota {
            Some(q) => {
                st.quotas.insert(tenant, q);
            }
            None => {
                st.quotas.remove(&tenant);
            }
        }
        // Re-enforce right away so a tightened quota takes effect before
        // the tenant's next put. Under `FailFast` the error (quota already
        // exceeded) is deferred to the next put, which reports it.
        let _ = self.enforce_locked(&mut st);
    }

    /// True when any client has a residency quota. The job server consults
    /// this to decide whether jobs must run exclusively (eviction order
    /// under concurrent jobs would be schedule-dependent).
    pub fn has_quotas(&self) -> bool {
        !self.state.lock().quotas.is_empty()
    }

    /// Resident cached bytes currently attributed to `client` across all
    /// places (spilled entries count zero).
    pub fn client_resident_bytes(&self, client: &str) -> u64 {
        let st = self.state.lock();
        let Some(tenant) = st.tenant_id(client) else {
            return 0;
        };
        st.entries
            .values()
            .filter(|e| e.resident && e.owner == Some(tenant))
            .map(|e| e.bytes)
            .sum()
    }

    /// Typed lookup. `expected_len` (from a split's byte range) guards
    /// against stale entries; pass `None` to accept any length.
    pub fn get_seq<K: Send + Sync + 'static, V: Send + Sync + 'static>(
        &self,
        path: &HPath,
        expected_len: Option<u64>,
    ) -> Option<CacheHit<K, V>> {
        let hit = self.lookup_seq(path, expected_len);
        self.mem.note_cache_access(hit.is_some());
        trace::mark(
            trace::Phase::Cache,
            if hit.is_some() { "cache_hit" } else { "cache_miss" },
            None,
        );
        hit
    }

    fn lookup_seq<K: Send + Sync + 'static, V: Send + Sync + 'static>(
        &self,
        path: &HPath,
        expected_len: Option<u64>,
    ) -> Option<CacheHit<K, V>> {
        let mut st = self.state.lock();
        let (id, place, meta, resident) = {
            let e = st.entries.get(path)?;
            if let Some(len) = expected_len {
                if e.meta.len != len {
                    return None;
                }
            }
            (e.id, e.place, e.meta.clone(), e.resident)
        };
        if !resident {
            return self.reload_locked::<K, V>(&mut st, path);
        }
        st.policies[place].on_access(id);
        let data = self.store.create_reader(&kpath(path), &meta).ok()?;
        let seq = data.downcast::<CachedSeq<K, V>>().ok()?;
        Some(CacheHit { seq, place, meta })
    }

    /// Fault a spilled entry back in: read + decode the spill file through
    /// the cost model, restore the kv-store block, and re-admit the entry —
    /// as the newest insertion normally, or *promoted and pinned* when the
    /// place's thrash detector has tripped and this entry is reloading for
    /// the second or later time (speculative re-admission, ISSUE 8).
    fn reload_locked<K: Send + Sync + 'static, V: Send + Sync + 'static>(
        &self,
        st: &mut GovState,
        path: &HPath,
    ) -> Option<CacheHit<K, V>> {
        let spill = Arc::clone(self.spill.as_ref()?);
        let (place, bytes, meta, codec, spath) = {
            let e = st.entries.get(path)?;
            (e.place, e.bytes, e.meta.clone(), e.codec.clone(), e.spill_path.clone()?)
        };
        let loaded = trace::span(trace::Phase::Cache, "cache_reload", None, || {
            let raw = read_file(&*spill.fs, &spath).ok()?;
            meter::charge(Charge::Deserialize { bytes: raw.len() as u64 });
            (codec.decode)(&raw).ok()
        })?;
        self.store
            .write_block(place, &kpath(path), meta.clone(), Arc::clone(&loaded), bytes)
            .ok()?;
        let _ = spill.fs.delete(&spath, false);
        let id = st.admit(path.clone(), place, bytes);
        let reloads = {
            let e = st.entries.get_mut(path).expect("entry present");
            e.id = id;
            e.resident = true;
            e.spill_path = None;
            e.reloads += 1;
            e.reloads
        };
        self.mem.grow(place, MemClass::Cache, bytes);
        self.mem.note_reload(place, bytes);
        // Thrash detection: every time a budget's worth of bytes has been
        // reloaded at this place, the detector trips — the cache is cycling
        // its working set, not shedding cold data.
        if let Some(budget) = self.mem.budget() {
            let ts = &mut st.thrash[place];
            ts.window_bytes += bytes;
            if ts.window_bytes > budget {
                ts.trips += 1;
                ts.window_bytes = 0;
            }
        }
        // Speculative re-admission: once thrash is evident, a *hot* reload
        // (second fault or later) is promoted — seeded with one policy
        // access per past reload, so frequency/recency policies rank it
        // above colder entries — and pinned against the enforcement pass
        // this very reload triggers, so it cannot be chosen as the victim
        // of its own fault-in.
        let pin = if st.thrash[place].trips >= 1 && reloads >= 2 {
            for _ in 0..reloads {
                st.policies[place].on_access(id);
            }
            Some(id)
        } else {
            None
        };
        // The reload itself may overflow the budget. Only `Spill` mode can
        // reach here (nothing ever spills under `FailFast`), so enforcement
        // cannot error; under a thrashing budget some entry may spill right
        // back out — the caller still gets its data.
        let _ = self.enforce_pinned_locked(st, pin);
        let seq = loaded.downcast::<CachedSeq<K, V>>().ok()?;
        Some(CacheHit { seq, place, meta })
    }

    /// Completed thrash-detector trips at `place` (reload windows whose
    /// bytes exceeded the budget). Test/bench introspection.
    pub fn thrash_trips(&self, place: usize) -> u64 {
        self.state.lock().thrash[place].trips
    }

    /// Evict victims until every over-quota tenant fits its quota and every
    /// place fits its budget (no-op when ungoverned, or when the budget is
    /// infinite and no quotas are set — the accountant then never
    /// influences behaviour, which is what the bit-equality tests pin).
    ///
    /// Quotas are enforced *first* — "over-quota tenants evict first" — so
    /// the budget step below only ever evicts from tenants already within
    /// their quotas (or unattributed entries).
    fn enforce_locked(&self, st: &mut GovState) -> Result<()> {
        self.enforce_pinned_locked(st, None)
    }

    /// [`KvCache::enforce_locked`] with an optional pinned entry: `pin` is
    /// exempt from victim selection for *this* pass only (used by
    /// speculative re-admission so a hot reload cannot be evicted by the
    /// enforcement its own fault-in triggers). The pin is an id, so it
    /// expires naturally — the next (re-)admission issues a fresh id.
    fn enforce_pinned_locked(&self, st: &mut GovState, pin: Option<u64>) -> Result<()> {
        let Some(spill) = &self.spill else {
            return Ok(());
        };
        let spill = Arc::clone(spill);
        self.enforce_quotas_locked(st, &spill)?;
        let Some(budget) = self.mem.budget() else {
            return Ok(());
        };
        for place in 0..self.store.num_places() {
            // The budget governs *cache* bytes. Shuffle payloads and pool
            // free lists are tallied for the watermarks but excluded here:
            // they grow from other places' threads (a stream publish lands
            // at its destination), so folding them in would make eviction
            // decisions depend on cross-place thread timing. Cache bytes
            // at a place change only under this governor lock, from that
            // place's own (deterministically ordered) operations.
            while self.mem.live_class(place, MemClass::Cache) > budget {
                if self.mem.oom_mode() == OomMode::FailFast {
                    return Err(HmrError::OutOfMemory(format!(
                        "place {place} holds {} live cached bytes against a budget of \
                         {budget} (fail_fast: refusing to spill)",
                        self.mem.live_class(place, MemClass::Cache)
                    )));
                }
                // The pin is advisory: it biases victim selection away from
                // the re-admitted entry, but the budget is a hard guarantee,
                // so when no other victim exists the pinned entry spills
                // after all rather than leaving the place over budget.
                let victim = match pin {
                    Some(pinned) => st.policies[place]
                        .victim_from(&mut |id| id != pinned)
                        .or_else(|| st.policies[place].victim()),
                    None => st.policies[place].victim(),
                };
                let Some(victim) = victim else {
                    break;
                };
                self.spill_locked(st, victim, spill.as_ref())?;
            }
        }
        Ok(())
    }

    /// Quota-priority eviction: for each quota'd tenant in interned order,
    /// spill that tenant's own entries — chosen by the place's normal
    /// eviction policy, restricted to the tenant ([`EvictionPolicy::
    /// victim_from`]) — until its total residency fits the quota. Victims
    /// come from the place where the tenant holds the most bytes (ties to
    /// the smallest place id) so pressure is relieved where it is worst.
    fn enforce_quotas_locked(&self, st: &mut GovState, spill: &SpillTarget) -> Result<()> {
        let quotas: Vec<(u32, u64)> = st.quotas.iter().map(|(t, q)| (*t, *q)).collect();
        for (tenant, quota) in quotas {
            loop {
                let mut per_place = vec![0u64; self.store.num_places()];
                for e in st.entries.values() {
                    if e.resident && e.owner == Some(tenant) {
                        per_place[e.place] += e.bytes;
                    }
                }
                let total: u64 = per_place.iter().sum();
                if total <= quota {
                    break;
                }
                if self.mem.oom_mode() == OomMode::FailFast {
                    return Err(HmrError::OutOfMemory(format!(
                        "client `{}` holds {total} resident cached bytes against a \
                         quota of {quota} (fail_fast: refusing to spill)",
                        st.tenants[tenant as usize]
                    )));
                }
                let place = per_place
                    .iter()
                    .enumerate()
                    .max_by_key(|(i, b)| (**b, std::cmp::Reverse(*i)))
                    .map(|(i, _)| i)
                    .expect("at least one place");
                let allowed: HashSet<u64> = st
                    .entries
                    .values()
                    .filter(|e| e.resident && e.owner == Some(tenant) && e.place == place)
                    .map(|e| e.id)
                    .collect();
                let Some(victim) =
                    st.policies[place].victim_from(&mut |id| allowed.contains(&id))
                else {
                    break;
                };
                self.spill_locked(st, victim, spill)?;
            }
        }
        Ok(())
    }

    /// Spill entry `id`: serialize through its codec, write the bytes to
    /// the spill filesystem (charged as serialize + DFS write), and swap
    /// the kv-store data for a marker so the metadata stays visible.
    fn spill_locked(&self, st: &mut GovState, id: u64, spill: &SpillTarget) -> Result<()> {
        let Some(path) = st.by_id.remove(&id) else {
            return Ok(()); // policy outlived the entry; nothing to do
        };
        let (place, bytes, meta, codec) = {
            let e = st.entries.get(&path).expect("by_id maps to a live entry");
            debug_assert!(e.resident, "victims are always resident");
            (e.place, e.bytes, e.meta.clone(), e.codec.clone())
        };
        let kp = kpath(&path);
        let encoded = self
            .store
            .create_reader(&kp, &meta)
            .ok()
            .and_then(|data| (codec.encode)(&data));
        let Some(encoded) = encoded else {
            // Unreadable or not encodable: drop the entry outright rather
            // than spill. `put_seq` captures the codec with the concrete
            // types, so this arm is defensive, not expected.
            st.entries.remove(&path);
            let _ = self.store.delete(&kp);
            self.mem.shrink(place, MemClass::Cache, bytes);
            self.mem.note_eviction(place, 0);
            return Ok(());
        };
        let spath = spill.root.join(&format!("e{id}"));
        let _ = spill.fs.delete(&spath, false);
        trace::span(trace::Phase::Cache, "cache_spill", None, || {
            meter::charge(Charge::Serialize {
                bytes: encoded.len() as u64,
            });
            write_file(&*spill.fs, &spath, &encoded)
        })?;
        self.store
            .write_block(place, &kp, meta, Arc::new(SpilledMarker) as BlockData, 0)
            .map_err(|e| HmrError::Io(format!("cache spill marker: {e:?}")))?;
        {
            let e = st.entries.get_mut(&path).expect("entry present");
            e.resident = false;
            e.spill_path = Some(spath);
        }
        self.mem.shrink(place, MemClass::Cache, bytes);
        self.mem.note_eviction(place, encoded.len() as u64);
        trace::mark(trace::Phase::Cache, "cache_evict", None);
        Ok(())
    }

    /// Drop governor state (and any spill file) for `path` only — the
    /// kv-store entry is the caller's to handle.
    fn forget_locked(&self, st: &mut GovState, path: &HPath) {
        if let Some(e) = st.entries.remove(path) {
            st.by_id.remove(&e.id);
            st.policies[e.place].on_remove(e.id);
            if e.resident {
                self.mem.shrink(e.place, MemClass::Cache, e.bytes);
            }
            if let (Some(spill), Some(sp)) = (&self.spill, &e.spill_path) {
                let _ = spill.fs.delete(sp, false);
            }
        }
    }

    /// Untyped metadata lookup: is `path` cached, and where/how big?
    /// Spilled entries answer exactly like resident ones — the kv-store
    /// keeps their metadata.
    pub fn status(&self, path: &HPath) -> Option<CacheMeta> {
        let info = self.store.get_info(&kpath(path)).ok()?;
        match info.kind {
            kvstore::PathKind::File => info.blocks.first().map(|b| b.info.clone()),
            kvstore::PathKind::Dir => Some(CacheMeta { len: 0, records: 0 }),
        }
    }

    /// True when `path` is a cached directory.
    pub fn is_dir(&self, path: &HPath) -> bool {
        matches!(
            self.store.get_info(&kpath(path)).map(|i| i.kind),
            Ok(kvstore::PathKind::Dir)
        )
    }

    /// The place holding `path`'s cached data, if any.
    pub fn place_of(&self, path: &HPath) -> Option<usize> {
        let info = self.store.get_info(&kpath(path)).ok()?;
        info.blocks.first().map(|b| b.place)
    }

    /// Cached children of a directory path.
    pub fn list(&self, dir: &HPath) -> Vec<(HPath, CacheMeta)> {
        let Ok(children) = self.store.list(&kpath(dir)) else {
            return Vec::new();
        };
        children
            .into_iter()
            .filter_map(|c| {
                let p = HPath::new(c.as_str());
                self.status(&p).map(|m| (p, m))
            })
            .collect()
    }

    /// Remove `path` (file or subtree) from the cache. §3.2.1: "deleting a
    /// file from the filesystem causes it to be transparently removed from
    /// the cache."
    pub fn delete(&self, path: &HPath) -> bool {
        let mut st = self.state.lock();
        let doomed: Vec<HPath> = st
            .entries
            .keys()
            .filter(|p| p.starts_with(path))
            .cloned()
            .collect();
        for p in doomed {
            self.forget_locked(&mut st, &p);
        }
        self.store.delete(&kpath(path)).unwrap_or(false)
    }

    /// Rename within the cache (keeps data at its place). Governor entries
    /// are re-keyed; policy state and spill files key on entry ids, so
    /// recency and spilled bytes survive the rename untouched.
    pub fn rename(&self, src: &HPath, dst: &HPath) -> std::result::Result<(), KvError> {
        let mut st = self.state.lock();
        self.store.rename(&kpath(src), &kpath(dst))?;
        let moved: Vec<HPath> = st
            .entries
            .keys()
            .filter(|p| p.starts_with(src))
            .cloned()
            .collect();
        for p in moved {
            let e = st.entries.remove(&p).expect("listed above");
            let suffix = &p.as_str()[src.as_str().len()..];
            let to = HPath::new(format!("{}{}", dst.as_str(), suffix));
            st.by_id.insert(e.id, to.clone());
            st.entries.insert(to, e);
        }
        Ok(())
    }

    /// Whether anything is cached under `path`.
    pub fn contains(&self, path: &HPath) -> bool {
        self.store.exists(&kpath(path))
    }

    /// Publish the cache's governor state into `registry` as pull-based
    /// gauges: per-owner resident bytes (tenant quota accounting made
    /// scrapeable), per-tenant quotas, entry/spilled-entry counts and
    /// per-place thrash trips. Hit/miss, eviction and spill/reload traffic
    /// are already exported by the accountant's own gauges
    /// ([`MemAccountant::publish_telemetry`], registered at cluster birth);
    /// this adds the governor's view. Callbacks capture the shared governor
    /// state, so exports always read current values; re-registration
    /// overwrites, so calling this more than once is harmless.
    pub fn publish_telemetry(&self, registry: &simgrid::TelemetryRegistry) {
        use std::collections::BTreeMap as Map;
        let state = Arc::clone(&self.state);
        registry.gauge(
            "m3r_cache_resident_bytes",
            "resident cached bytes by owning tenant (\"<shared>\" = no owner)",
            Arc::new(move || {
                let st = state.lock();
                let mut by_owner: Map<String, f64> = Map::new();
                // Every interned tenant exports a sample (zero included) so
                // a tenant evicted to nothing stays visible on a dashboard.
                for t in &st.tenants {
                    by_owner.insert(t.clone(), 0.0);
                }
                for e in st.entries.values().filter(|e| e.resident) {
                    let owner = e
                        .owner
                        .and_then(|t| st.tenants.get(t as usize).cloned())
                        .unwrap_or_else(|| "<shared>".to_string());
                    *by_owner.entry(owner).or_insert(0.0) += e.bytes as f64;
                }
                by_owner
                    .into_iter()
                    .map(|(owner, v)| (format!("owner=\"{owner}\""), v))
                    .collect()
            }),
        );
        let state = Arc::clone(&self.state);
        registry.gauge(
            "m3r_cache_quota_bytes",
            "per-tenant resident-byte quota",
            Arc::new(move || {
                let st = state.lock();
                st.quotas
                    .iter()
                    .filter_map(|(t, q)| {
                        st.tenants
                            .get(*t as usize)
                            .map(|name| (format!("owner=\"{name}\""), *q as f64))
                    })
                    .collect()
            }),
        );
        let state = Arc::clone(&self.state);
        registry.gauge(
            "m3r_cache_entries",
            "cache entries by residency",
            Arc::new(move || {
                let st = state.lock();
                let resident = st.entries.values().filter(|e| e.resident).count();
                let spilled = st.entries.len() - resident;
                vec![
                    ("state=\"resident\"".to_string(), resident as f64),
                    ("state=\"spilled\"".to_string(), spilled as f64),
                ]
            }),
        );
        let state = Arc::clone(&self.state);
        registry.gauge(
            "m3r_cache_thrash_trips_total",
            "thrash-detector trips per place (reload traffic exceeded the budget)",
            Arc::new(move || {
                let st = state.lock();
                st.thrash
                    .iter()
                    .enumerate()
                    .map(|(p, t)| (format!("place=\"{p}\""), t.trips as f64))
                    .collect()
            }),
        );
    }

    /// Total resident cache bytes, read from the memory accountant — the
    /// single source of truth for cache footprint (the paper's §6.1
    /// benchmark explicitly deletes consumed inputs "as \[their\] presence
    /// in the cache wastes memory").
    pub fn total_bytes(&self) -> u64 {
        (0..self.store.num_places())
            .map(|p| self.mem.live_class(p, MemClass::Cache))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hmr_api::fs::MemFs;
    use hmr_api::writable::{IntWritable, Text};

    fn seq(n: i32) -> Arc<CachedSeq<IntWritable, Text>> {
        Arc::new(CachedSeq::new(
            (0..n)
                .map(|i| {
                    (
                        Arc::new(IntWritable(i)),
                        Arc::new(Text::from(format!("v{i}"))),
                    )
                })
                .collect(),
        ))
    }

    #[test]
    fn put_get_roundtrip_with_aliasing() {
        let cache = KvCache::new(4);
        let p = HPath::new("/out/part-00000");
        let s = seq(3);
        cache.put_seq(2, &p, Arc::clone(&s), 100).unwrap();
        let hit = cache.get_seq::<IntWritable, Text>(&p, Some(100)).unwrap();
        assert_eq!(hit.place, 2);
        assert_eq!(hit.meta.records, 3);
        assert!(Arc::ptr_eq(&hit.seq, &s), "cache returns the same sequence");
    }

    #[test]
    fn length_mismatch_is_a_miss() {
        let cache = KvCache::new(2);
        let p = HPath::new("/f");
        cache.put_seq(0, &p, seq(1), 10).unwrap();
        assert!(cache.get_seq::<IntWritable, Text>(&p, Some(11)).is_none());
        assert!(cache.get_seq::<IntWritable, Text>(&p, Some(10)).is_some());
        assert!(cache.get_seq::<IntWritable, Text>(&p, None).is_some());
    }

    #[test]
    fn type_mismatch_is_a_miss_not_an_error() {
        let cache = KvCache::new(2);
        let p = HPath::new("/f");
        cache.put_seq(0, &p, seq(1), 10).unwrap();
        // A consumer expecting (Text, Text) simply bypasses the cache.
        assert!(cache.get_seq::<Text, Text>(&p, Some(10)).is_none());
    }

    #[test]
    fn replacement_updates_entry() {
        let cache = KvCache::new(2);
        let p = HPath::new("/f");
        cache.put_seq(0, &p, seq(1), 10).unwrap();
        cache.put_seq(1, &p, seq(5), 50).unwrap();
        let hit = cache.get_seq::<IntWritable, Text>(&p, None).unwrap();
        assert_eq!(hit.meta.records, 5);
        assert_eq!(hit.place, 1);
        assert_eq!(cache.total_bytes(), 50, "old entry weight reclaimed");
    }

    #[test]
    fn delete_and_rename_maintain_cache() {
        let cache = KvCache::new(2);
        cache
            .put_seq(0, &HPath::new("/out/temp_1/part-00000"), seq(2), 20)
            .unwrap();
        cache
            .put_seq(1, &HPath::new("/out/temp_1/part-00001"), seq(2), 20)
            .unwrap();
        cache
            .rename(&HPath::new("/out/temp_1"), &HPath::new("/out/final"))
            .unwrap();
        assert!(cache.contains(&HPath::new("/out/final/part-00001")));
        assert_eq!(cache.place_of(&HPath::new("/out/final/part-00001")), Some(1));
        assert!(cache.delete(&HPath::new("/out/final")));
        assert_eq!(cache.total_bytes(), 0);
    }

    #[test]
    fn list_cached_directory() {
        let cache = KvCache::new(2);
        cache.put_seq(0, &HPath::new("/d/a"), seq(1), 5).unwrap();
        cache.put_seq(0, &HPath::new("/d/b"), seq(1), 7).unwrap();
        let mut ls = cache.list(&HPath::new("/d"));
        ls.sort_by(|a, b| a.0.cmp(&b.0));
        assert_eq!(ls.len(), 2);
        assert_eq!(ls[1].1.len, 7);
    }

    // -- governance ---------------------------------------------------------

    fn governed(places: usize, budget: u64, policy: PolicyKind) -> (KvCache, Arc<MemFs>) {
        let fs = MemFs::shared();
        let mem = MemAccountant::new(places);
        mem.set_budget(Some(budget));
        let cache = KvCache::governed(places, mem, fs.clone() as Arc<dyn FileSystem>, policy);
        (cache, fs)
    }

    #[test]
    fn eviction_spills_and_reload_restores_pairs() {
        // Budget of 25 at place 0: the second 20-byte entry evicts the
        // first (LRU), which must still stat, still list, and reload on
        // its next typed read.
        let (cache, fs) = governed(1, 25, PolicyKind::Lru);
        let a = HPath::new("/d/a");
        let b = HPath::new("/d/b");
        cache.put_seq(0, &a, seq(3), 20).unwrap();
        cache.put_seq(0, &b, seq(2), 20).unwrap();
        assert_eq!(cache.mem().evictions(0), 1);
        assert!(cache.mem().spill_bytes(0) > 0);
        assert_eq!(cache.total_bytes(), 20, "only /d/b is resident");
        assert_eq!(
            cache.status(&a),
            Some(CacheMeta { len: 20, records: 3 }),
            "spilled entry keeps its metadata"
        );
        assert!(
            fs.exists(&HPath::new("/.m3r-spill/e0")),
            "spill file written for the first admission"
        );
        let hit = cache.get_seq::<IntWritable, Text>(&a, Some(20)).unwrap();
        assert_eq!(hit.seq.pairs.len(), 3);
        assert_eq!(*hit.seq.pairs[2].0, IntWritable(2));
        assert_eq!(hit.seq.pairs[2].1.as_ref(), &Text::from("v2"));
        assert!(cache.mem().reload_bytes(0) > 0);
        // The reload pushed /d/b out in turn (budget fits only one).
        assert_eq!(cache.total_bytes(), 20);
        assert!(!fs.exists(&HPath::new("/.m3r-spill/e0")), "spill file reclaimed");
    }

    #[test]
    fn thrash_detector_trips_and_pins_the_hot_reload() {
        // Budget 25, LFU. /hot and /cold are 20 bytes each: only one fits.
        let (cache, _fs) = governed(1, 25, PolicyKind::Lfu);
        let hot = HPath::new("/hot");
        let cold = HPath::new("/cold");
        cache.put_seq(0, &hot, seq(2), 20).unwrap();
        cache.put_seq(0, &cold, seq(2), 20).unwrap();
        // The LFU tie broke to the older entry: /hot spilled. Warm /cold
        // so it outranks a plain (unpromoted) re-admission of /hot.
        assert!(cache.get_seq::<IntWritable, Text>(&cold, None).is_some());
        assert!(cache.get_seq::<IntWritable, Text>(&cold, None).is_some());

        // First fault of /hot: 20 reload bytes stay inside the 25-byte
        // window — no trip — and the re-admission (freq 1 vs /cold's 3)
        // spills right back out: the classic thrash cycle.
        assert!(cache.get_seq::<IntWritable, Text>(&hot, None).is_some());
        assert_eq!(cache.thrash_trips(0), 0);

        // Second fault: cumulative reload traffic (40 bytes) exceeds the
        // budget and the detector trips. /hot is now a *hot* reload
        // (reloads = 2), so it comes back promoted and pinned — this time
        // /cold is the victim and /hot survives its own fault-in.
        assert!(cache.get_seq::<IntWritable, Text>(&hot, None).is_some());
        assert_eq!(cache.thrash_trips(0), 1);
        let before = cache.mem().reload_bytes(0);
        assert!(cache.get_seq::<IntWritable, Text>(&hot, None).is_some());
        assert_eq!(cache.mem().reload_bytes(0), before, "hot entry stayed resident");
    }

    #[test]
    fn fail_fast_errors_instead_of_spilling() {
        let (cache, fs) = governed(1, 25, PolicyKind::Lru);
        cache.mem().set_oom_mode(OomMode::FailFast);
        cache.put_seq(0, &HPath::new("/a"), seq(1), 20).unwrap();
        let err = cache
            .put_seq(0, &HPath::new("/b"), seq(1), 20)
            .unwrap_err();
        assert!(matches!(err, HmrError::OutOfMemory(_)), "{err}");
        assert_eq!(cache.mem().evictions(0), 0, "fail_fast never evicts");
        assert!(!fs.exists(&HPath::new("/.m3r-spill")), "nothing spilled");
    }

    #[test]
    fn budgets_are_per_place() {
        let (cache, _fs) = governed(2, 25, PolicyKind::Lru);
        cache.put_seq(0, &HPath::new("/a"), seq(1), 20).unwrap();
        cache.put_seq(1, &HPath::new("/b"), seq(1), 20).unwrap();
        assert_eq!(cache.mem().evictions(0) + cache.mem().evictions(1), 0);
        assert_eq!(cache.total_bytes(), 40, "each place fits its own budget");
    }

    #[test]
    fn delete_and_rename_cover_spilled_entries() {
        let (cache, fs) = governed(1, 25, PolicyKind::Lru);
        let a = HPath::new("/d/a");
        cache.put_seq(0, &a, seq(3), 20).unwrap();
        cache.put_seq(0, &HPath::new("/d/b"), seq(2), 20).unwrap(); // spills /d/a
        cache.rename(&HPath::new("/d"), &HPath::new("/e")).unwrap();
        let hit = cache
            .get_seq::<IntWritable, Text>(&HPath::new("/e/a"), Some(20))
            .unwrap();
        assert_eq!(hit.seq.pairs.len(), 3, "spilled entry reloads under its new name");
        // Spill again, then delete the subtree: the spill file must go too.
        cache.put_seq(0, &HPath::new("/e/c"), seq(2), 20).unwrap();
        assert!(cache.delete(&HPath::new("/e")));
        assert_eq!(cache.total_bytes(), 0);
        let spills = fs
            .list_status(&HPath::new("/.m3r-spill"))
            .map(|l| l.len())
            .unwrap_or(0);
        assert_eq!(spills, 0, "no orphaned spill files after delete");
    }

    #[test]
    fn client_quota_evicts_the_over_quota_tenant_only() {
        // Infinite budget, but tenant "big" is capped at 45 bytes: its
        // third put pushes it to 60, so its coldest entry spills. Tenant
        // "small" (and the unattributed entry) must be untouched.
        let fs = MemFs::shared();
        let mem = MemAccountant::new(2);
        let cache =
            KvCache::governed(2, mem, fs.clone() as Arc<dyn FileSystem>, PolicyKind::Lru);
        cache
            .put_seq_for(0, &HPath::new("/s/a"), seq(1), 20, Some("small"))
            .unwrap();
        cache.put_seq(1, &HPath::new("/free"), seq(1), 20).unwrap();
        cache.set_client_quota("big", Some(45));
        cache
            .put_seq_for(0, &HPath::new("/b/1"), seq(2), 20, Some("big"))
            .unwrap();
        cache
            .put_seq_for(1, &HPath::new("/b/2"), seq(2), 20, Some("big"))
            .unwrap();
        assert_eq!(cache.mem().evictions(0) + cache.mem().evictions(1), 0);
        cache
            .put_seq_for(0, &HPath::new("/b/3"), seq(2), 20, Some("big"))
            .unwrap();
        assert_eq!(cache.client_resident_bytes("big"), 40, "evicted down to quota");
        assert_eq!(cache.client_resident_bytes("small"), 20, "innocent tenant kept");
        assert_eq!(
            cache.mem().evictions(0) + cache.mem().evictions(1),
            1,
            "exactly one quota eviction"
        );
        // The victim was big's LRU entry at its heaviest place (place 0
        // held /b/1 and /b/3 = 40 vs 20 at place 1; LRU there is /b/1).
        assert!(
            cache
                .get_seq::<IntWritable, Text>(&HPath::new("/b/1"), None)
                .is_some(),
            "spilled entry still reloads on demand"
        );
        assert!(cache.has_quotas());
        cache.set_client_quota("big", None);
        assert!(!cache.has_quotas());
    }

    #[test]
    fn tightening_a_quota_evicts_immediately() {
        let fs = MemFs::shared();
        let mem = MemAccountant::new(1);
        let cache =
            KvCache::governed(1, mem, fs.clone() as Arc<dyn FileSystem>, PolicyKind::Lru);
        cache
            .put_seq_for(0, &HPath::new("/t/a"), seq(2), 30, Some("c1"))
            .unwrap();
        cache
            .put_seq_for(0, &HPath::new("/t/b"), seq(2), 30, Some("c1"))
            .unwrap();
        assert_eq!(cache.client_resident_bytes("c1"), 60);
        cache.set_client_quota("c1", Some(30));
        assert_eq!(cache.client_resident_bytes("c1"), 30);
        assert_eq!(cache.mem().evictions(0), 1);
    }

    #[test]
    fn quota_with_fail_fast_errors_on_the_overflowing_put() {
        let fs = MemFs::shared();
        let mem = MemAccountant::new(1);
        mem.set_oom_mode(OomMode::FailFast);
        let cache =
            KvCache::governed(1, mem, fs.clone() as Arc<dyn FileSystem>, PolicyKind::Lru);
        cache.set_client_quota("c", Some(25));
        cache
            .put_seq_for(0, &HPath::new("/a"), seq(1), 20, Some("c"))
            .unwrap();
        let err = cache
            .put_seq_for(0, &HPath::new("/b"), seq(1), 20, Some("c"))
            .unwrap_err();
        assert!(matches!(err, HmrError::OutOfMemory(_)), "{err}");
        assert_eq!(cache.mem().evictions(0), 0);
    }

    #[test]
    fn infinite_budget_never_touches_the_spill_fs() {
        let fs = MemFs::shared();
        let mem = MemAccountant::new(1);
        let cache =
            KvCache::governed(1, mem, fs.clone() as Arc<dyn FileSystem>, PolicyKind::Lru);
        for i in 0..32 {
            cache
                .put_seq(0, &HPath::new(format!("/f{i}")), seq(4), 1 << 20)
                .unwrap();
        }
        assert_eq!(cache.mem().evictions(0), 0);
        assert!(!fs.exists(&HPath::new("/.m3r-spill")));
        assert_eq!(cache.total_bytes(), 32 << 20);
    }
}
