#![warn(missing_docs)]
#![allow(clippy::type_complexity)]

//! # m3r — Main Memory Map Reduce
//!
//! The paper's core contribution: a new implementation of the Hadoop
//! MapReduce **APIs** (crate `hmr-api`) "targeted at online analytics on
//! high mean-time-to-failure clusters", trading resilience for in-memory
//! performance. It runs HMR jobs unchanged while:
//!
//! * keeping key/value sequences in a family of long-lived places and
//!   sharing heap state between jobs ([`cache`], over the §5.2 `kvstore`);
//! * replacing the jobtracker/heartbeat machinery with fast X10-style
//!   barriers (crate `x10rt`);
//! * fulfilling repeated input requests from the in-memory cache, and
//!   keeping *temporary* outputs (§4.2.3) entirely off the disk;
//! * shuffling in memory, with de-duplication of broadcast values
//!   ([`shuffle`], §3.2.2.3) and a *partition stability* guarantee
//!   ([`stability`], §3.2.2.2) that lets carefully written pipelines
//!   eliminate all non-inherent communication;
//! * honouring the backward-compatible API extensions of §4
//!   (`ImmutableOutput`, `NamedSplit`/`DelegatingSplit`, `PlacedSplit`,
//!   `CacheFS`, temporary-output conventions).
//!
//! Like the paper's engine, this one is **not resilient**: there are no
//! task retries, no speculative execution, and a failed place fails the
//! job. In exchange, a job that fits in cluster memory pays neither JVM
//! startups nor disk round trips between jobs.
//!
//! ## Quick start
//!
//! ```
//! use std::sync::Arc;
//! use hmr_api::Engine;
//! use m3r::M3REngine;
//!
//! // A 4-node simulated cluster with an HDFS-like filesystem.
//! let cluster = simgrid::Cluster::new(4, simgrid::CostModel::default());
//! let dfs = simdfs::SimDfs::new(cluster.clone());
//! let engine = M3REngine::new(cluster, Arc::new(dfs));
//!
//! // Jobs written against hmr-api run unchanged on M3R or Hadoop.
//! // (See the `workloads` crate for complete JobDef implementations.)
//! assert_eq!(engine.engine_name(), "m3r");
//! assert_eq!(engine.num_places(), 4);
//! ```

pub mod cache;
pub mod cachefs;
pub mod engine;
pub mod interop;
pub mod repartition;
pub mod shuffle;
pub mod stability;

pub use cache::{CacheHit, CacheMeta, CachedSeq, KvCache};
pub use cachefs::{CachingFs, RawCacheFs};
pub use engine::{M3REngine, M3ROptions, MemoryOptions, M3R_COUNTER_GROUP};
pub use kvstore::policy::PolicyKind;
pub use simgrid::mem::{MemAccountant, MemClass, OomMode};
pub use interop::{JobClient, Ran};
pub use repartition::{repartition, RepartitionJob};
pub use shuffle::{decode_stream, MapOutputBuffer, ShuffleStream};
pub use stability::PlaceMap;
pub use x10rt::serialize::DedupMode;
