//! Hadoop interop: the job-client dispatch of paper §5.3.
//!
//! In *integrated mode* M3R replaces Hadoop's `JobClient` so submissions go
//! straight to the engine — unless "an (M3R-aware) client explicitly wishes
//! to use Hadoop for a specific job [by setting] a property in the
//! submitted job configuration", in which case "the JobClient submission
//! logic will invoke a Hadoop server as usual." [`JobClient`] is that
//! dispatch: it owns an [`M3REngine`] plus an optional fallback engine and
//! routes each job on `m3r.use.hadoop.engine`.
//!
//! The paper's §4.1 note about Hadoop's *default MapRunnable* is discharged
//! structurally in this port: the default map loop hands each input pair to
//! the mapper as fresh `Arc`s (never a mutated singleton), so the
//! "customized version that allocates a new key/value for each input" is
//! the only behaviour that exists, and identity mappers alias safely.

use std::sync::Arc;

use hmr_api::conf::JobConf;
use hmr_api::error::Result;
use hmr_api::job::{Engine, JobDef, JobResult};

use crate::engine::M3REngine;

/// Which engine actually ran a job (observability for tests).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Ran {
    /// The M3R engine.
    M3r,
    /// The fallback (stock Hadoop) engine.
    Fallback,
}

/// Integrated-mode job client: transparently redirects submissions to M3R,
/// honouring the per-job Hadoop escape hatch.
pub struct JobClient<F: Engine> {
    m3r: M3REngine,
    fallback: Option<F>,
    last_ran: Option<Ran>,
}

impl<F: Engine> JobClient<F> {
    /// A client over `m3r` with an optional stock-Hadoop fallback.
    pub fn new(m3r: M3REngine, fallback: Option<F>) -> Self {
        JobClient {
            m3r,
            fallback,
            last_ran: None,
        }
    }

    /// The wrapped M3R engine.
    pub fn m3r(&mut self) -> &mut M3REngine {
        &mut self.m3r
    }

    /// Which engine the most recent submission ran on.
    pub fn last_ran(&self) -> Option<Ran> {
        self.last_ran
    }

    /// Submit a job: M3R unless the configuration requests Hadoop.
    pub fn submit_job<J: JobDef>(&mut self, job: Arc<J>, conf: &JobConf) -> Result<JobResult> {
        if conf.use_hadoop_engine() {
            if let Some(h) = self.fallback.as_mut() {
                self.last_ran = Some(Ran::Fallback);
                return h.run_job(job, conf);
            }
        }
        self.last_ran = Some(Ran::M3r);
        self.m3r.run_job(job, conf)
    }
}
