//! Server mode (paper §5.3).
//!
//! "M3R also supports a (still somewhat experimental) server mode. In this
//! mode, M3R starts up and registers an IPC server that implements the
//! Hadoop JobTracker protocol. Clients can submit jobs as usual, and the
//! M3R server ... will run the job. It is possible to simply replace the
//! Hadoop server daemon with the M3R one." The paper ran all of BigSheets
//! this way, unmodified.
//!
//! Here the "IPC" is a channel: [`M3RServer`] owns the engine on a daemon
//! thread; any number of [`M3RClient`]s (cheaply cloneable, shareable
//! across threads) submit jobs and block for results, exactly like Hadoop
//! `JobClient.runJob`. All clients share one engine — and therefore one
//! cache and one set of long-lived places, so jobs submitted by *different
//! clients* still pipeline through memory.

use std::sync::mpsc;
use std::thread::JoinHandle;

use hmr_api::conf::JobConf;
use hmr_api::error::{HmrError, Result};
use hmr_api::job::{Engine, JobDef, JobResult};

use crate::engine::M3REngine;

type ServerJob = Box<dyn FnOnce(&mut M3REngine) + Send>;

enum Msg {
    Run(ServerJob),
    Shutdown,
}

/// The M3R daemon: owns the engine, serves submissions until shut down.
pub struct M3RServer {
    tx: mpsc::Sender<Msg>,
    thread: Option<JoinHandle<M3REngine>>,
}

impl M3RServer {
    /// Start the daemon on a fresh thread, taking ownership of `engine`
    /// (the places stay alive for the server's whole life).
    pub fn start(mut engine: M3REngine) -> Self {
        let (tx, rx) = mpsc::channel::<Msg>();
        let thread = std::thread::Builder::new()
            .name("m3r-server".into())
            .spawn(move || {
                while let Ok(msg) = rx.recv() {
                    match msg {
                        Msg::Run(job) => job(&mut engine),
                        Msg::Shutdown => break,
                    }
                }
                engine
            })
            .expect("spawn m3r server thread");
        M3RServer {
            tx,
            thread: Some(thread),
        }
    }

    /// A submission handle. Clone freely; hand to any thread.
    pub fn client(&self) -> M3RClient {
        M3RClient {
            tx: self.tx.clone(),
        }
    }

    /// Stop the daemon and take the engine back (cache and all) — the
    /// moral equivalent of stopping the Hadoop daemon and restarting it on
    /// the same port (§5.3's swap-in story, reversed).
    pub fn shutdown(mut self) -> M3REngine {
        let _ = self.tx.send(Msg::Shutdown);
        self.thread
            .take()
            .expect("server not yet shut down")
            .join()
            .expect("server thread panicked")
    }
}

impl Drop for M3RServer {
    fn drop(&mut self) {
        let _ = self.tx.send(Msg::Shutdown);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

/// A client handle speaking the "jobtracker protocol" to an [`M3RServer`].
#[derive(Clone)]
pub struct M3RClient {
    tx: mpsc::Sender<Msg>,
}

impl M3RClient {
    /// Submit a job and block until it completes (Hadoop
    /// `JobClient.runJob` semantics).
    pub fn run_job<J: JobDef>(&self, job: std::sync::Arc<J>, conf: &JobConf) -> Result<JobResult> {
        let (done_tx, done_rx) = mpsc::channel();
        let conf = conf.clone();
        let task: ServerJob = Box::new(move |engine| {
            let r = engine.run_job(job, &conf);
            let _ = done_tx.send(r);
        });
        self.tx
            .send(Msg::Run(task))
            .map_err(|_| HmrError::Io("m3r server is down".into()))?;
        done_rx
            .recv()
            .map_err(|_| HmrError::Io("m3r server dropped the job".into()))?
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::repartition::RepartitionJob;
    use hmr_api::counters::task_counter;
    use hmr_api::io::seqfile::write_seq_file;
    use hmr_api::partition::HashPartitioner;
    use hmr_api::writable::{IntWritable, Text};
    use hmr_api::HPath;
    use simdfs::SimDfs;
    use simgrid::{Cluster, CostModel};
    use std::sync::Arc;

    fn id_job() -> Arc<RepartitionJob<IntWritable, Text>> {
        Arc::new(RepartitionJob::new(|| Box::new(HashPartitioner)))
    }

    fn conf(input: &str, output: &str) -> JobConf {
        let mut c = JobConf::new();
        c.add_input_path(&HPath::new(input));
        c.set_output_path(&HPath::new(output));
        c.set_num_reduce_tasks(2);
        c
    }

    #[test]
    fn clients_share_one_engine_and_cache() {
        let cluster = Cluster::new(2, CostModel::default());
        let fs = SimDfs::with_config(cluster.clone(), 1 << 20, 2);
        let records: Vec<(IntWritable, Text)> = (0..20)
            .map(|i| (IntWritable(i), Text::from(format!("v{i}"))))
            .collect();
        write_seq_file(&fs, &HPath::new("/in/part-00000"), &records).unwrap();

        let server = M3RServer::start(M3REngine::new(cluster, Arc::new(fs.clone())));
        let c1 = server.client();
        let c2 = server.client();

        // Client 1 reads /in (cold); client 2's job over the same input is
        // served from the cache client 1 populated — one engine, one heap.
        let r1 = c1.run_job(id_job(), &conf("/in", "/o1")).unwrap();
        assert_eq!(r1.counters.task(task_counter::CACHE_HIT_RECORDS), 0);
        let r2 = c2.run_job(id_job(), &conf("/in", "/o2")).unwrap();
        assert_eq!(r2.counters.task(task_counter::CACHE_HIT_RECORDS), 20);

        // Shutdown returns the warm engine, cache intact.
        let engine = server.shutdown();
        assert!(engine.cache().total_bytes() > 0);
    }

    #[test]
    fn concurrent_clients_serialize_through_the_server() {
        let cluster = Cluster::new(2, CostModel::default());
        let fs = SimDfs::with_config(cluster.clone(), 1 << 20, 2);
        let records: Vec<(IntWritable, Text)> = (0..8)
            .map(|i| (IntWritable(i), Text::from("x")))
            .collect();
        write_seq_file(&fs, &HPath::new("/in/part-00000"), &records).unwrap();
        let server = M3RServer::start(M3REngine::new(cluster, Arc::new(fs.clone())));

        std::thread::scope(|s| {
            for t in 0..6 {
                let client = server.client();
                s.spawn(move || {
                    let r = client
                        .run_job(id_job(), &conf("/in", &format!("/out{t}")))
                        .unwrap();
                    assert_eq!(r.output_records, 8);
                });
            }
        });
        use hmr_api::fs::FileSystem;
        for t in 0..6 {
            assert!(fs.exists(&HPath::new(format!("/out{t}/part-00000"))));
        }
    }

    #[test]
    fn submitting_after_shutdown_fails_cleanly() {
        let cluster = Cluster::new(1, CostModel::default());
        let fs = SimDfs::with_config(cluster.clone(), 1 << 20, 1);
        let server = M3RServer::start(M3REngine::new(cluster, Arc::new(fs)));
        let client = server.client();
        drop(server);
        let err = client.run_job(id_job(), &conf("/in", "/out")).unwrap_err();
        assert!(matches!(err, HmrError::Io(_)));
    }
}
