//! The repartitioning job (paper §6.1.1).
//!
//! Data generated under Hadoop is partitioned by the same `Partitioner`
//! but laid out across hosts by Hadoop's arbitrary partition→host
//! assignment. "To avoid [remote shuffles for unmodified keys], a
//! 'repartitioner' job is run ahead of time, in M3R, using the identity
//! mapper and reducer. This redistributes the HDFS storage of the data,
//! using the shuffle, according to the M3R assignment of partitions to
//! hosts. ... This is a one-off cost, as the reorganized data can be used
//! for any job, in any run of the benchmark subsequent to this."

use std::sync::Arc;

use hmr_api::comparator::KeyComparator;
use hmr_api::conf::JobConf;
use hmr_api::error::Result;
use hmr_api::fs::HPath;
use hmr_api::io::{InputFormat, OutputFormat, SequenceFileInputFormat, SequenceFileOutputFormat};
use hmr_api::job::{Engine, JobDef, JobResult};
use hmr_api::partition::Partitioner;
use hmr_api::task::{IdentityMapper, IdentityReducer, TaskMapper, TaskReducer};
use hmr_api::writable::{WritableKey, WritableValue};

/// An identity job over sequence files with a caller-supplied partitioner:
/// the repartitioner of §6.1.1, also reusable as a generic copy/sort job.
pub struct RepartitionJob<K, V> {
    partitioner: Arc<dyn Fn() -> Box<dyn Partitioner<K, V>> + Send + Sync>,
    /// Marked immutable: identity pass-through never mutates emitted pairs.
    _marker: std::marker::PhantomData<fn() -> (K, V)>,
}

impl<K: WritableKey, V: WritableValue> RepartitionJob<K, V> {
    /// A repartition job routing records with `partitioner`.
    pub fn new(
        partitioner: impl Fn() -> Box<dyn Partitioner<K, V>> + Send + Sync + 'static,
    ) -> Self {
        RepartitionJob {
            partitioner: Arc::new(partitioner),
            _marker: std::marker::PhantomData,
        }
    }
}

impl<K: WritableKey, V: WritableValue> JobDef for RepartitionJob<K, V> {
    type K1 = K;
    type V1 = V;
    type K2 = K;
    type V2 = V;
    type K3 = K;
    type V3 = V;

    fn create_mapper(&self, _conf: &JobConf) -> Box<dyn TaskMapper<K, V, K, V>> {
        Box::new(IdentityMapper)
    }
    fn create_reducer(&self, _conf: &JobConf) -> Box<dyn TaskReducer<K, V, K, V>> {
        Box::new(IdentityReducer)
    }
    fn partitioner(&self, _conf: &JobConf) -> Box<dyn Partitioner<K, V>> {
        (self.partitioner)()
    }
    fn input_format(&self, _conf: &JobConf) -> Box<dyn InputFormat<K, V>> {
        Box::new(SequenceFileInputFormat::new())
    }
    fn output_format(&self, _conf: &JobConf) -> Box<dyn OutputFormat<K, V>> {
        Box::new(SequenceFileOutputFormat::new())
    }
    fn immutable_output(&self) -> bool {
        true
    }
    fn sort_comparator(&self) -> KeyComparator<K> {
        KeyComparator::natural()
    }
    fn name(&self) -> &str {
        "repartition"
    }
}

/// Run the one-off repartitioning job on `engine`: read `input`, re-shuffle
/// every pair with `partitioner` into `num_partitions` partitions, write to
/// `output`. Under M3R's partition stability the output part files land at
/// (and stay cached at) exactly the places that will reduce those
/// partitions in every subsequent job.
pub fn repartition<E, K, V>(
    engine: &mut E,
    input: &HPath,
    output: &HPath,
    num_partitions: usize,
    partitioner: impl Fn() -> Box<dyn Partitioner<K, V>> + Send + Sync + 'static,
) -> Result<JobResult>
where
    E: Engine,
    K: WritableKey,
    V: WritableValue,
{
    let mut conf = JobConf::new();
    conf.add_input_path(input);
    conf.set_output_path(output);
    conf.set_num_reduce_tasks(num_partitions);
    conf.set(hmr_api::conf::JOB_NAME, "repartition");
    engine.run_job(Arc::new(RepartitionJob::new(partitioner)), &conf)
}
