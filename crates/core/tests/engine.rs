//! Engine-level tests for M3R: the paper's qualitative claims, asserted on
//! real job runs over the simulated cluster.

use std::sync::Arc;

use hmr_api::collect::OutputCollector;
use hmr_api::comparator::KeyComparator;
use hmr_api::conf::JobConf;
use hmr_api::counters::{task_counter, TaskContext};
use hmr_api::error::Result;
use hmr_api::fs::FileSystem;
use hmr_api::io::seqfile::{read_seq_file, write_seq_file};
use hmr_api::io::{InputFormat, OutputFormat, SequenceFileInputFormat, SequenceFileOutputFormat};
use hmr_api::job::{Engine, JobDef};
use hmr_api::partition::{FnPartitioner, Partitioner};
use hmr_api::task::{IdentityMapper, IdentityReducer, LongSumReducer, TaskMapper, TaskReducer};
use hmr_api::writable::{IntWritable, LongWritable, Text};
use hmr_api::HPath;
use m3r::{DedupMode, M3REngine, M3ROptions};
use simdfs::SimDfs;
use simgrid::{Cluster, CostModel};

// ---------------------------------------------------------------------------
// Job definitions used across the tests
// ---------------------------------------------------------------------------

/// WordCount with a switchable ImmutableOutput declaration.
struct WordCount {
    immutable: bool,
}

struct WcMapper {
    immutable: bool,
}

impl TaskMapper<LongWritable, Text, Text, LongWritable> for WcMapper {
    fn map(
        &mut self,
        _key: Arc<LongWritable>,
        value: Arc<Text>,
        out: &mut dyn OutputCollector<Text, LongWritable>,
        _ctx: &mut TaskContext,
    ) -> Result<()> {
        if self.immutable {
            // Fig 4 right: fresh Text per token.
            for tok in value.as_str().split_whitespace() {
                out.collect(Arc::new(Text::from(tok)), Arc::new(LongWritable(1)))?;
            }
        } else {
            // Fig 4 left: one reused Text, mutated between emits.
            let mut word = Arc::new(Text::default());
            let one = Arc::new(LongWritable(1));
            for tok in value.as_str().split_whitespace() {
                Text::set_shared(&mut word, tok);
                out.collect(Arc::clone(&word), Arc::clone(&one))?;
            }
        }
        Ok(())
    }
}

impl JobDef for WordCount {
    type K1 = LongWritable;
    type V1 = Text;
    type K2 = Text;
    type V2 = LongWritable;
    type K3 = Text;
    type V3 = LongWritable;

    fn create_mapper(
        &self,
        _conf: &JobConf,
    ) -> Box<dyn TaskMapper<LongWritable, Text, Text, LongWritable>> {
        Box::new(WcMapper {
            immutable: self.immutable,
        })
    }
    fn create_reducer(
        &self,
        _conf: &JobConf,
    ) -> Box<dyn TaskReducer<Text, LongWritable, Text, LongWritable>> {
        Box::new(LongSumReducer)
    }
    fn input_format(&self, _conf: &JobConf) -> Box<dyn InputFormat<LongWritable, Text>> {
        Box::new(hmr_api::io::TextInputFormat)
    }
    fn output_format(&self, _conf: &JobConf) -> Box<dyn OutputFormat<Text, LongWritable>> {
        Box::new(SequenceFileOutputFormat::new())
    }
    fn immutable_output(&self) -> bool {
        self.immutable
    }
    fn name(&self) -> &str {
        "wordcount"
    }
}

/// Identity pipeline job over (IntWritable, Text) sequence files with a
/// mod-key partitioner — the shape of the §6.1 microbenchmark.
struct IdPipe;

impl JobDef for IdPipe {
    type K1 = IntWritable;
    type V1 = Text;
    type K2 = IntWritable;
    type V2 = Text;
    type K3 = IntWritable;
    type V3 = Text;

    fn create_mapper(
        &self,
        _conf: &JobConf,
    ) -> Box<dyn TaskMapper<IntWritable, Text, IntWritable, Text>> {
        Box::new(IdentityMapper)
    }
    fn create_reducer(
        &self,
        _conf: &JobConf,
    ) -> Box<dyn TaskReducer<IntWritable, Text, IntWritable, Text>> {
        Box::new(IdentityReducer)
    }
    fn partitioner(&self, _conf: &JobConf) -> Box<dyn Partitioner<IntWritable, Text>> {
        Box::new(FnPartitioner::new(|k: &IntWritable, _: &Text, n| {
            k.0 as usize % n
        }))
    }
    fn input_format(&self, _conf: &JobConf) -> Box<dyn InputFormat<IntWritable, Text>> {
        Box::new(SequenceFileInputFormat::new())
    }
    fn output_format(&self, _conf: &JobConf) -> Box<dyn OutputFormat<IntWritable, Text>> {
        Box::new(SequenceFileOutputFormat::new())
    }
    fn immutable_output(&self) -> bool {
        true
    }
    fn map_only_convert(
        &self,
    ) -> Option<hmr_api::job::MapOnlyConvert<IntWritable, Text, IntWritable, Text>> {
        Some(Arc::new(|k, v| (k, v)))
    }
    fn sort_comparator(&self) -> KeyComparator<IntWritable> {
        KeyComparator::natural()
    }
    fn name(&self) -> &str {
        "idpipe"
    }
}

// ---------------------------------------------------------------------------
// Helpers
// ---------------------------------------------------------------------------

fn setup(nodes: usize) -> (M3REngine, SimDfs, Cluster) {
    let cluster = Cluster::new(nodes, CostModel::default());
    let fs = SimDfs::with_config(cluster.clone(), 1 << 20, 2);
    let engine = M3REngine::with_options(
        cluster.clone(),
        Arc::new(fs.clone()),
        M3ROptions {
            worker_threads: 2,
            ..M3ROptions::default()
        },
    );
    (engine, fs, cluster)
}

fn conf(input: &str, output: &str, reducers: usize) -> JobConf {
    let mut c = JobConf::new();
    c.add_input_path(&HPath::new(input));
    c.set_output_path(&HPath::new(output));
    c.set_num_reduce_tasks(reducers);
    c
}

fn gen_pairs(n: i32) -> Vec<(IntWritable, Text)> {
    (0..n)
        .map(|i| (IntWritable(i), Text::from(format!("value-{i}"))))
        .collect()
}

// ---------------------------------------------------------------------------
// Tests
// ---------------------------------------------------------------------------

#[test]
fn wordcount_matches_expected_counts() {
    let (mut engine, fs, _) = setup(3);
    hmr_api::fs::write_file(
        &fs,
        &HPath::new("/in/t.txt"),
        b"to be or not to be\nthat is the question",
    )
    .unwrap();
    let r = engine
        .run_job(Arc::new(WordCount { immutable: true }), &conf("/in", "/out", 2))
        .unwrap();
    let mut counts = std::collections::BTreeMap::new();
    for p in 0..2 {
        let path = HPath::new(format!("/out/part-{p:05}"));
        for (k, v) in read_seq_file::<Text, LongWritable>(&fs, &path).unwrap() {
            counts.insert(k.as_str().to_string(), v.0);
        }
    }
    assert_eq!(counts["to"], 2);
    assert_eq!(counts["be"], 2);
    assert_eq!(counts["question"], 1);
    assert_eq!(counts.len(), 8);
    assert_eq!(r.counters.task(task_counter::MAP_OUTPUT_RECORDS), 10);
    assert_eq!(r.metrics.task_startups, 0, "no JVMs start in M3R");
    assert_eq!(r.metrics.heartbeats, 0, "no jobtracker heartbeats in M3R");
}

#[test]
fn m3r_overhead_floor_is_tiny() {
    // "Small HMR jobs can run essentially instantly on M3R."
    let (mut engine, fs, _) = setup(2);
    hmr_api::fs::write_file(&fs, &HPath::new("/in/t.txt"), b"one word").unwrap();
    let r = engine
        .run_job(Arc::new(WordCount { immutable: true }), &conf("/in", "/out", 1))
        .unwrap();
    assert!(
        r.sim_time < 1.0,
        "tiny job should be far under Hadoop's ~10s floor, got {}",
        r.sim_time
    );
}

#[test]
fn second_read_of_same_input_is_served_from_cache() {
    let (mut engine, fs, _) = setup(2);
    write_seq_file(&fs, &HPath::new("/in/part-00000"), &gen_pairs(100)).unwrap();
    let r1 = engine
        .run_job(Arc::new(IdPipe), &conf("/in", "/o1", 2))
        .unwrap();
    assert_eq!(r1.counters.task(task_counter::CACHE_HIT_RECORDS), 0);
    assert!(r1.metrics.disk_bytes_read > 0, "first read hits the DFS");

    let r2 = engine
        .run_job(Arc::new(IdPipe), &conf("/in", "/o2", 2))
        .unwrap();
    assert_eq!(
        r2.counters.task(task_counter::CACHE_HIT_RECORDS),
        100,
        "same input now comes from the key/value cache"
    );
    // The only disk traffic left is writing /o2 and the _SUCCESS marker.
    assert_eq!(
        r2.metrics.disk_bytes_read, 0,
        "no DFS reads on a cache hit"
    );
    assert!(r2.sim_time < r1.sim_time);
}

#[test]
fn job_pipeline_consumes_previous_output_from_cache() {
    let (mut engine, fs, _) = setup(2);
    write_seq_file(&fs, &HPath::new("/in/part-00000"), &gen_pairs(50)).unwrap();
    engine
        .run_job(Arc::new(IdPipe), &conf("/in", "/stage1", 2))
        .unwrap();
    // Job 2 reads job 1's output: fulfilled from the cache.
    let r2 = engine
        .run_job(Arc::new(IdPipe), &conf("/stage1", "/stage2", 2))
        .unwrap();
    assert_eq!(r2.counters.task(task_counter::CACHE_HIT_RECORDS), 50);
    assert_eq!(r2.metrics.disk_bytes_read, 0);
    // And the data is still correct end to end.
    let mut all = Vec::new();
    for p in 0..2 {
        all.extend(
            read_seq_file::<IntWritable, Text>(
                &fs,
                &HPath::new(format!("/stage2/part-{p:05}")),
            )
            .unwrap(),
        );
    }
    all.sort();
    assert_eq!(all, gen_pairs(50));
}

#[test]
fn temp_outputs_never_touch_the_dfs_but_feed_the_next_job() {
    let (mut engine, fs, cluster) = setup(2);
    write_seq_file(&fs, &HPath::new("/in/part-00000"), &gen_pairs(40)).unwrap();
    // Warm the input cache.
    engine
        .run_job(Arc::new(IdPipe), &conf("/in", "/w/temp_0", 2))
        .unwrap();
    let before = cluster.metrics().snapshot();
    let r = engine
        .run_job(Arc::new(IdPipe), &conf("/w/temp_0", "/w/temp_1", 2))
        .unwrap();
    let delta = cluster.metrics().snapshot().since(&before);
    assert_eq!(delta.disk_bytes_written, 0, "temp output stays in memory");
    assert_eq!(delta.disk_bytes_read, 0, "temp input read from cache");
    assert_eq!(r.counters.task(task_counter::CACHE_HIT_RECORDS), 40);
    assert!(
        !fs.exists(&HPath::new("/w/temp_1/part-00000")),
        "nothing on the DFS for temp outputs"
    );
    // Final job materializes to the DFS.
    let r3 = engine
        .run_job(Arc::new(IdPipe), &conf("/w/temp_1", "/w/final", 2))
        .unwrap();
    assert!(r3.metrics.disk_bytes_written > 0);
    let mut all = Vec::new();
    for p in 0..2 {
        all.extend(
            read_seq_file::<IntWritable, Text>(&fs, &HPath::new(format!("/w/final/part-{p:05}")))
                .unwrap(),
        );
    }
    all.sort();
    assert_eq!(all, gen_pairs(40));
}

#[test]
fn partition_stability_keeps_consistent_pipelines_local() {
    // §3.2.2.2: with a consistent partitioner, the second job's shuffle is
    // entirely local — the cached part files already sit at their
    // partitions' places.
    let (mut engine, fs, _) = setup(4);
    write_seq_file(&fs, &HPath::new("/in/part-00000"), &gen_pairs(64)).unwrap();
    // Job 1 repartitions (arbitrary input layout → stable layout).
    engine
        .run_job(Arc::new(IdPipe), &conf("/in", "/p/temp_a", 4))
        .unwrap();
    // Job 2 re-shuffles with the same partitioner: all-local now.
    let r2 = engine
        .run_job(Arc::new(IdPipe), &conf("/p/temp_a", "/p/temp_b", 4))
        .unwrap();
    assert_eq!(
        r2.counters.task(task_counter::REMOTE_SHUFFLED_RECORDS),
        0,
        "partition stability eliminated all remote shuffling"
    );
    assert_eq!(r2.counters.task(task_counter::LOCAL_SHUFFLED_RECORDS), 64);
    assert_eq!(r2.metrics.ser_bytes, 0, "local shuffle never serializes");
}

#[test]
fn without_partition_stability_the_guarantee_disappears() {
    let cluster = Cluster::new(4, CostModel::default());
    let fs = SimDfs::with_config(cluster.clone(), 1 << 20, 2);
    let mut engine = M3REngine::with_options(
        cluster,
        Arc::new(fs.clone()),
        M3ROptions {
            worker_threads: 2,
            partition_stability: false,
            ..M3ROptions::default()
        },
    );
    write_seq_file(&fs, &HPath::new("/in/part-00000"), &gen_pairs(64)).unwrap();
    engine
        .run_job(Arc::new(IdPipe), &conf("/in", "/p/temp_a", 4))
        .unwrap();
    let r2 = engine
        .run_job(Arc::new(IdPipe), &conf("/p/temp_a", "/p/temp_b", 4))
        .unwrap();
    assert!(
        r2.counters.task(task_counter::REMOTE_SHUFFLED_RECORDS) > 0,
        "with an unstable partition map, data moves again"
    );
}

#[test]
fn immutable_output_avoids_cloning() {
    let (mut engine, fs, _) = setup(2);
    hmr_api::fs::write_file(
        &fs,
        &HPath::new("/in/t.txt"),
        "alpha beta gamma delta ".repeat(50).as_bytes(),
    )
    .unwrap();
    let r_imm = engine
        .run_job(Arc::new(WordCount { immutable: true }), &conf("/in", "/a", 2))
        .unwrap();
    let r_mut = engine
        .run_job(Arc::new(WordCount { immutable: false }), &conf("/in", "/b", 2))
        .unwrap();
    assert_eq!(r_imm.metrics.clone_bytes, 0, "ImmutableOutput → aliasing");
    assert!(
        r_mut.metrics.clone_bytes > 0,
        "default contract → defensive copies"
    );
    // Both produce identical counts.
    let read = |dir: &str| {
        let mut m = std::collections::BTreeMap::new();
        for p in 0..2 {
            let path = HPath::new(format!("{dir}/part-{p:05}"));
            for (k, v) in read_seq_file::<Text, LongWritable>(&fs, &path).unwrap() {
                m.insert(k.as_str().to_string(), v.0);
            }
        }
        m
    };
    assert_eq!(read("/a"), read("/b"));
    assert_eq!(read("/a")["alpha"], 50);
}

#[test]
fn map_only_jobs_run_without_a_reduce_phase() {
    let (mut engine, fs, _) = setup(2);
    write_seq_file(&fs, &HPath::new("/in/part-00000"), &gen_pairs(7)).unwrap();
    let r = engine
        .run_job(Arc::new(IdPipe), &conf("/in", "/out", 0))
        .unwrap();
    assert_eq!(r.output_records, 7);
    assert_eq!(r.counters.task(task_counter::REDUCE_INPUT_RECORDS), 0);
    let back = read_seq_file::<IntWritable, Text>(&fs, &HPath::new("/out/part-00000")).unwrap();
    assert_eq!(back.len(), 7);
}

#[test]
fn explicit_cache_delete_forces_reload() {
    // §6.1: "We explicitly delete the previous iteration's input, as it
    // will not be accessed again and its presence in the cache wastes
    // memory."
    let (mut engine, fs, _) = setup(2);
    write_seq_file(&fs, &HPath::new("/in/part-00000"), &gen_pairs(30)).unwrap();
    engine
        .run_job(Arc::new(IdPipe), &conf("/in", "/o1", 2))
        .unwrap();
    assert!(engine.cache().total_bytes() > 0);
    // Raw-cache delete: cache-only, DFS untouched (§4.2.3).
    use hmr_api::extensions::CacheFsExt;
    let raw = engine.caching_fs().raw_cache();
    raw.delete(&HPath::new("/in/part-00000"), false).unwrap();
    assert!(fs.exists(&HPath::new("/in/part-00000")), "DFS survives");
    let r2 = engine
        .run_job(Arc::new(IdPipe), &conf("/in", "/o2", 2))
        .unwrap();
    assert_eq!(
        r2.counters.task(task_counter::CACHE_HIT_RECORDS),
        0,
        "deleted from cache → re-read from DFS"
    );
    assert!(r2.metrics.disk_bytes_read > 0);
}

#[test]
fn dedup_shrinks_broadcast_shuffles() {
    // A mapper that broadcasts one big value to every partition.
    struct BroadcastJob {
        dedup: bool,
    }
    struct BroadcastMapper;
    impl TaskMapper<IntWritable, Text, IntWritable, Text> for BroadcastMapper {
        fn map(
            &mut self,
            _k: Arc<IntWritable>,
            v: Arc<Text>,
            out: &mut dyn OutputCollector<IntWritable, Text>,
            _ctx: &mut TaskContext,
        ) -> Result<()> {
            for p in 0..16 {
                out.collect(Arc::new(IntWritable(p)), Arc::clone(&v))?;
            }
            Ok(())
        }
    }
    impl JobDef for BroadcastJob {
        type K1 = IntWritable;
        type V1 = Text;
        type K2 = IntWritable;
        type V2 = Text;
        type K3 = IntWritable;
        type V3 = Text;
        fn create_mapper(
            &self,
            _c: &JobConf,
        ) -> Box<dyn TaskMapper<IntWritable, Text, IntWritable, Text>> {
            Box::new(BroadcastMapper)
        }
        fn create_reducer(
            &self,
            _c: &JobConf,
        ) -> Box<dyn TaskReducer<IntWritable, Text, IntWritable, Text>> {
            Box::new(IdentityReducer)
        }
        fn partitioner(&self, _c: &JobConf) -> Box<dyn Partitioner<IntWritable, Text>> {
            Box::new(FnPartitioner::new(|k: &IntWritable, _: &Text, n| {
                k.0 as usize % n
            }))
        }
        fn input_format(&self, _c: &JobConf) -> Box<dyn InputFormat<IntWritable, Text>> {
            Box::new(SequenceFileInputFormat::new())
        }
        fn output_format(&self, _c: &JobConf) -> Box<dyn OutputFormat<IntWritable, Text>> {
            Box::new(SequenceFileOutputFormat::new())
        }
        fn immutable_output(&self) -> bool {
            true
        }
        fn name(&self) -> &str {
            if self.dedup {
                "broadcast-dedup"
            } else {
                "broadcast-plain"
            }
        }
    }

    let run = |dedup: DedupMode| {
        let cluster = Cluster::new(4, CostModel::default());
        let fs = SimDfs::with_config(cluster.clone(), 1 << 20, 2);
        let big = Text::from("x".repeat(2000));
        write_seq_file(
            &fs,
            &HPath::new("/in/part-00000"),
            &[(IntWritable(0), big)],
        )
        .unwrap();
        let mut engine = M3REngine::with_options(
            cluster,
            Arc::new(fs),
            M3ROptions {
                worker_threads: 2,
                dedup,
                ..M3ROptions::default()
            },
        );
        engine
            .run_job(
                Arc::new(BroadcastJob {
                    dedup: dedup != DedupMode::Off,
                }),
                &conf("/in", "/out/temp_o", 16),
            )
            .unwrap()
    };
    let with = run(DedupMode::Full);
    let without = run(DedupMode::Off);
    assert!(
        with.metrics.ser_bytes * 3 < without.metrics.ser_bytes,
        "dedup sent ~1 copy per place instead of 16: {} vs {}",
        with.metrics.ser_bytes,
        without.metrics.ser_bytes
    );
    assert!(with.counters.get(m3r::M3R_COUNTER_GROUP, "DEDUP_HITS") > 0);
    assert_eq!(
        without.counters.get(m3r::M3R_COUNTER_GROUP, "DEDUP_HITS"),
        0
    );
}

#[test]
fn job_client_dispatches_on_conf_flag() {
    let cluster = Cluster::new(2, CostModel::default());
    let fs = SimDfs::with_config(cluster.clone(), 1 << 20, 2);
    write_seq_file(&fs, &HPath::new("/in/part-00000"), &gen_pairs(5)).unwrap();
    let m3r_engine = M3REngine::new(cluster.clone(), Arc::new(fs.clone()));
    let hadoop = hadoop_engine::HadoopEngine::new(cluster, Arc::new(fs.clone()));
    let mut client = m3r::JobClient::new(m3r_engine, Some(hadoop));

    let mut c1 = conf("/in", "/via_m3r", 1);
    client.submit_job(Arc::new(IdPipe), &c1).unwrap();
    assert_eq!(client.last_ran(), Some(m3r::Ran::M3r));

    c1.set_output_path(&HPath::new("/via_hadoop"));
    c1.set(hmr_api::conf::USE_HADOOP, "true");
    let r = client.submit_job(Arc::new(IdPipe), &c1).unwrap();
    assert_eq!(client.last_ran(), Some(m3r::Ran::Fallback));
    assert!(r.metrics.task_startups > 0, "the fallback really is Hadoop");
    // Outputs agree between engines.
    let a = read_seq_file::<IntWritable, Text>(&fs, &HPath::new("/via_m3r/part-00000")).unwrap();
    let b =
        read_seq_file::<IntWritable, Text>(&fs, &HPath::new("/via_hadoop/part-00000")).unwrap();
    assert_eq!(a, b);
}

#[test]
fn repartition_makes_subsequent_shuffles_local() {
    // §6.1.1 in full: generator laid the data out arbitrarily; one
    // repartition job fixes it for every subsequent job.
    let (mut engine, fs, _) = setup(4);
    // Simulate "Hadoop-generated" data: records scattered across part
    // files with no relation to the mod partitioner.
    let mut rows = gen_pairs(64);
    rows.reverse();
    for chunk in 0..4 {
        write_seq_file(
            &fs,
            &HPath::new(format!("/gen/part-{chunk:05}")),
            &rows[chunk * 16..(chunk + 1) * 16],
        )
        .unwrap();
    }
    let rep = m3r::repartition(
        &mut engine,
        &HPath::new("/gen"),
        &HPath::new("/stable"),
        4,
        || {
            Box::new(FnPartitioner::new(|k: &IntWritable, _: &Text, n| {
                k.0 as usize % n
            }))
        },
    )
    .unwrap();
    assert!(rep.sim_time > 0.0);
    // After repartitioning, the pipeline shuffles locally.
    let r = engine
        .run_job(Arc::new(IdPipe), &conf("/stable", "/next/temp_x", 4))
        .unwrap();
    assert_eq!(r.counters.task(task_counter::REMOTE_SHUFFLED_RECORDS), 0);
    assert_eq!(r.counters.task(task_counter::LOCAL_SHUFFLED_RECORDS), 64);
}

#[test]
fn outputs_match_hadoop_engine_bit_for_bit() {
    // §6: "we ran these Hadoop programs in both the standard Hadoop engine
    // and in our M3R engine, on the same input from HDFS, and verified that
    // they produced equivalent output in HDFS."
    let cluster = Cluster::new(3, CostModel::default());
    let fs = SimDfs::with_config(cluster.clone(), 1 << 20, 2);
    hmr_api::fs::write_file(
        &fs,
        &HPath::new("/in/t.txt"),
        b"the quick brown fox jumps over the lazy dog\nthe end",
    )
    .unwrap();
    let mut hadoop = hadoop_engine::HadoopEngine::new(cluster.clone(), Arc::new(fs.clone()));
    let mut m3r_engine = M3REngine::new(cluster, Arc::new(fs.clone()));
    hadoop
        .run_job(
            Arc::new(WordCount { immutable: true }),
            &conf("/in", "/h", 2),
        )
        .unwrap();
    m3r_engine
        .run_job(
            Arc::new(WordCount { immutable: true }),
            &conf("/in", "/m", 2),
        )
        .unwrap();
    for p in 0..2 {
        let h = read_seq_file::<Text, LongWritable>(&fs, &HPath::new(format!("/h/part-{p:05}")))
            .unwrap();
        let m = read_seq_file::<Text, LongWritable>(&fs, &HPath::new(format!("/m/part-{p:05}")))
            .unwrap();
        assert_eq!(h, m, "partition {p} differs between engines");
    }
}
