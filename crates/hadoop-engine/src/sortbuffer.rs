//! The map-side sort buffer (§3.1): "The mapper outputs key/value pairs,
//! which are immediately serialized and placed in a buffer. While in the
//! buffer, Hadoop may run the user's combiner... When the buffer fills up,
//! they are sorted and flushed out to local disk." After the last record
//! the spill runs are merged into per-partition segments.
//!
//! Pairs are serialized at `collect` time — the Hadoop contract that allows
//! user code to mutate and reuse emitted objects. A decoded copy of the key
//! rides along purely so sorting can use the job's comparators; Hadoop
//! sorts raw bytes with a `RawComparator`, so no deserialization cost is
//! charged for it.

use std::sync::Arc;

use bytes::{Bytes, BytesMut};
use hmr_api::collect::{OutputCollector, VecCollector};
use hmr_api::comparator::{apply_permutation, build_raw_keys, raw_prefix, KeyComparator};
use hmr_api::counters::{task_counter, TaskContext};
use hmr_api::error::{HmrError, Result};
use hmr_api::partition::Partitioner;
use hmr_api::task::TaskReducer;
use hmr_api::writable::{ByteReader, ByteSink, Writable};
use simgrid::cost::Charge;
use simgrid::meter;
use simgrid::trace;
use simgrid::BufPool;

/// One buffered record: partition, decoded key (sort convenience), and the
/// authoritative serialized bytes.
struct Rec<K> {
    partition: u32,
    key: K,
    kbytes: Vec<u8>,
    vbytes: Vec<u8>,
}

impl<K> Rec<K> {
    fn len(&self) -> usize {
        self.kbytes.len() + self.vbytes.len()
    }
}

/// Frame one serialized record onto any byte sink (a `Vec<u8>` scratch or
/// a pooled `BytesMut` segment buffer).
pub fn frame_record<S: ByteSink + ?Sized>(out: &mut S, kbytes: &[u8], vbytes: &[u8]) {
    hmr_api::writable::write_vu64(out, kbytes.len() as u64);
    hmr_api::writable::write_vu64(out, vbytes.len() as u64);
    out.put_slice(kbytes);
    out.put_slice(vbytes);
}

/// Decode every framed record in `bytes` into typed pairs. Accepts any
/// byte storage — a borrowed slice or a refcounted [`Bytes`] segment.
pub fn decode_segment<K: Writable, V: Writable>(
    bytes: impl AsRef<[u8]>,
) -> Result<Vec<(Arc<K>, Arc<V>)>> {
    let mut r = ByteReader::new(bytes.as_ref());
    let mut out = Vec::new();
    while r.remaining() > 0 {
        let klen = r.read_vu64()? as usize;
        let vlen = r.read_vu64()? as usize;
        let key = {
            let mut kr = ByteReader::new(r.read_bytes(klen)?);
            K::read_from(&mut kr)?
        };
        let value = {
            let mut vr = ByteReader::new(r.read_bytes(vlen)?);
            V::read_from(&mut vr)?
        };
        out.push((Arc::new(key), Arc::new(value)));
    }
    Ok(out)
}

/// The spill-based map-output buffer. Implements [`OutputCollector`] so the
/// mapper writes straight into it.
pub struct SortBuffer<K, V> {
    num_partitions: usize,
    partitioner: Box<dyn Partitioner<K, V>>,
    sort_cmp: KeyComparator<K>,
    group_cmp: KeyComparator<K>,
    combiner: Option<Box<dyn TaskReducer<K, V, K, V>>>,
    /// Internal context so the combiner's counters are not lost.
    combiner_ctx: TaskContext,
    records: Vec<Rec<K>>,
    buffered_bytes: usize,
    threshold_bytes: usize,
    /// Sorted, combined spill runs (simulated local-disk files).
    spills: Vec<Vec<Rec<K>>>,
    spill_count: usize,
    emitted: u64,
}

impl<K, V> SortBuffer<K, V>
where
    K: Writable + Clone + Send + Sync,
    V: Writable + Clone + Send + Sync,
{
    /// A buffer spilling after `threshold_bytes` of serialized output.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        num_partitions: usize,
        threshold_bytes: usize,
        partitioner: Box<dyn Partitioner<K, V>>,
        sort_cmp: KeyComparator<K>,
        group_cmp: KeyComparator<K>,
        combiner: Option<Box<dyn TaskReducer<K, V, K, V>>>,
        combiner_ctx: TaskContext,
    ) -> Self {
        SortBuffer {
            num_partitions: num_partitions.max(1),
            partitioner,
            sort_cmp,
            group_cmp,
            combiner,
            combiner_ctx,
            records: Vec::new(),
            buffered_bytes: 0,
            threshold_bytes: threshold_bytes.max(1),
            spills: Vec::new(),
            spill_count: 0,
            emitted: 0,
        }
    }

    /// Records emitted by the mapper into this buffer (pre-combiner).
    pub fn emitted_records(&self) -> u64 {
        self.emitted
    }

    /// Number of spills performed so far (observability for tests/metrics).
    pub fn spill_count(&self) -> usize {
        self.spill_count
    }

    fn sort_run(&mut self, mut run: Vec<Rec<K>>) -> Vec<Rec<K>> {
        meter::charge(Charge::Sort {
            records: run.len() as u64,
        });
        // Hadoop's RawComparator fast path: keys whose serialized form is
        // memcmp-ordered sort on cached raw prefixes with `sort_unstable`,
        // no boxed comparator call per comparison. Ties break on the
        // original index, reproducing the stable sort's permutation
        // exactly — output bytes are identical either way.
        if self.sort_cmp.is_natural() && run.len() > 1 {
            if let Some((arena, spans)) = build_raw_keys(run.iter().map(|r| &r.key)) {
                let raw = |i: u32| {
                    let (s, e) = spans[i as usize];
                    &arena[s as usize..e as usize]
                };
                // (partition, prefix, index) entries: most comparisons
                // resolve on the in-register fields; equal prefixes fall
                // back to the full raw form, then the original index,
                // reproducing the stable sort's permutation exactly.
                let mut order: Vec<(u32, u64, u32)> = (0..run.len() as u32)
                    .map(|i| (run[i as usize].partition, raw_prefix(raw(i)), i))
                    .collect();
                order.sort_unstable_by(|a, b| {
                    a.0.cmp(&b.0)
                        .then_with(|| a.1.cmp(&b.1))
                        .then_with(|| raw(a.2).cmp(raw(b.2)))
                        .then(a.2.cmp(&b.2))
                });
                let order: Vec<u32> = order.into_iter().map(|(_, _, i)| i).collect();
                apply_permutation(&mut run, &order);
                return run;
            }
        }
        let cmp = self.sort_cmp.clone();
        run.sort_by(|a, b| {
            a.partition
                .cmp(&b.partition)
                .then_with(|| cmp.compare(&a.key, &b.key))
        });
        run
    }

    /// Run the combiner over a sorted run, producing a new sorted run.
    fn combine(&mut self, run: Vec<Rec<K>>) -> Result<Vec<Rec<K>>> {
        let Some(mut combiner) = self.combiner.take() else {
            return Ok(run);
        };
        let result = self.combine_with(&mut *combiner, run);
        self.combiner = Some(combiner);
        result
    }

    fn combine_with(
        &mut self,
        combiner: &mut dyn TaskReducer<K, V, K, V>,
        run: Vec<Rec<K>>,
    ) -> Result<Vec<Rec<K>>> {
        let mut out_run: Vec<Rec<K>> = Vec::new();
        let mut i = 0;
        while i < run.len() {
            let mut j = i + 1;
            while j < run.len()
                && run[j].partition == run[i].partition
                && self.group_cmp.same_group(&run[j].key, &run[i].key)
            {
                j += 1;
            }
            // Combiner input: deserialize the group's values (charged — the
            // real engine must decode buffered bytes to combine them).
            let group = &run[i..j];
            let vbytes: u64 = group.iter().map(|r| r.vbytes.len() as u64).sum();
            meter::charge(Charge::Deserialize { bytes: vbytes });
            self.combiner_ctx
                .incr_task_counter(task_counter::COMBINE_INPUT_RECORDS, group.len() as i64);
            let mut values: Vec<Arc<V>> = Vec::with_capacity(group.len());
            for r in group {
                let mut vr = ByteReader::new(&r.vbytes);
                values.push(Arc::new(V::read_from(&mut vr)?));
            }
            let key = Arc::new(group[0].key.clone());
            let partition = group[0].partition;
            let mut collected: VecCollector<K, V> = VecCollector::new();
            combiner.reduce(
                Arc::clone(&key),
                &mut values.into_iter(),
                &mut collected,
                &mut self.combiner_ctx,
            )?;
            self.combiner_ctx.incr_task_counter(
                task_counter::COMBINE_OUTPUT_RECORDS,
                collected.pairs.len() as i64,
            );
            for (k, v) in collected.pairs {
                // Combiner output is re-serialized into the buffer.
                let mut kbytes = Vec::new();
                k.write_to(&mut kbytes);
                let mut vbytes = Vec::new();
                v.write_to(&mut vbytes);
                meter::charge(Charge::Serialize {
                    bytes: (kbytes.len() + vbytes.len()) as u64,
                });
                out_run.push(Rec {
                    partition,
                    key: (*k).clone(),
                    kbytes,
                    vbytes,
                });
            }
            i = j;
        }
        Ok(out_run)
    }

    fn spill(&mut self) -> Result<()> {
        if self.records.is_empty() {
            return Ok(());
        }
        trace::span(trace::Phase::Sort, "spill", None, || {
            let run = std::mem::take(&mut self.records);
            self.buffered_bytes = 0;
            let run = self.sort_run(run);
            let run = self.combine(run)?;
            let bytes: u64 = run.iter().map(|r| r.len() as u64).sum();
            // The sorted run goes to local disk.
            meter::charge(Charge::DiskWrite { bytes });
            self.spills.push(run);
            self.spill_count += 1;
            Ok(())
        })
    }

    /// Final spill + merge into per-partition serialized segments, sorted by
    /// the job's sort comparator within each partition. Also returns the
    /// combiner's counters. Segment buffers come from `pool` when one is
    /// given and are frozen into refcounted [`Bytes`] handles that reduce
    /// tasks read without copying.
    pub fn finish(mut self, pool: Option<&BufPool>) -> Result<(Vec<Bytes>, hmr_api::Counters)> {
        self.spill()?;
        let num_spills = self.spills.len();
        let spills = std::mem::take(&mut self.spills);
        let total_bytes: u64 = spills
            .iter()
            .flat_map(|s| s.iter())
            .map(|r| r.len() as u64)
            .sum();
        let merged = trace::span(trace::Phase::Sort, "merge", None, || {
            if num_spills > 1 {
                // Merge pass over the on-disk runs: read everything back,
                // write the merged file out.
                meter::charge(Charge::DiskRead { bytes: total_bytes });
                meter::charge(Charge::DiskWrite { bytes: total_bytes });
            }
            // K-way merge of sorted runs (stable two-run merges preserve the
            // per-run order for equal keys, like Hadoop's merger).
            let cmp = self.sort_cmp.clone();
            spills
                .into_iter()
                .fold(Vec::new(), |acc, run| merge_two(acc, run, &cmp))
        });
        // Exact per-partition sizes (payload + up to 10 framing bytes per
        // length varint) so each segment buffer is allocated once.
        let mut sizes = vec![0usize; self.num_partitions];
        for r in &merged {
            sizes[r.partition as usize] += r.len() + 20;
        }
        let mut segments: Vec<BytesMut> = sizes
            .iter()
            .map(|&n| match pool {
                Some(p) => p.get(n),
                None => BytesMut::with_capacity(n),
            })
            .collect();
        for r in &merged {
            frame_record(&mut segments[r.partition as usize], &r.kbytes, &r.vbytes);
        }
        Ok((
            segments.into_iter().map(BytesMut::freeze).collect(),
            self.combiner_ctx.into_counters(),
        ))
    }
}

fn merge_two<K: Writable>(a: Vec<Rec<K>>, b: Vec<Rec<K>>, cmp: &KeyComparator<K>) -> Vec<Rec<K>> {
    if a.is_empty() {
        return b;
    }
    if b.is_empty() {
        return a;
    }
    // Raw fast path mirroring `sort_run`: when both runs' keys have a
    // memcmp-ordered serialized form, the merge compares raw prefixes. The
    // tie rule (equal → take from `a`) is unchanged, so the merged order is
    // bit-identical to the comparator merge.
    if cmp.is_natural() {
        if let (Some((aa, asp)), Some((ba, bsp))) = (
            build_raw_keys(a.iter().map(|r| &r.key)),
            build_raw_keys(b.iter().map(|r| &r.key)),
        ) {
            let raw_a = |i: usize| {
                let (s, e) = asp[i];
                &aa[s as usize..e as usize]
            };
            let raw_b = |j: usize| {
                let (s, e) = bsp[j];
                &ba[s as usize..e as usize]
            };
            let (alen, blen) = (a.len(), b.len());
            let mut out = Vec::with_capacity(alen + blen);
            let mut ai = a.into_iter();
            let mut bi = b.into_iter();
            let (mut i, mut j) = (0usize, 0usize);
            while i < alen && j < blen {
                let ord = ai.as_slice()[0]
                    .partition
                    .cmp(&bi.as_slice()[0].partition)
                    .then_with(|| raw_a(i).cmp(raw_b(j)));
                if ord == std::cmp::Ordering::Greater {
                    out.push(bi.next().expect("j < blen"));
                    j += 1;
                } else {
                    out.push(ai.next().expect("i < alen"));
                    i += 1;
                }
            }
            out.extend(ai);
            out.extend(bi);
            return out;
        }
    }
    let mut out = Vec::with_capacity(a.len() + b.len());
    let mut ai = a.into_iter().peekable();
    let mut bi = b.into_iter().peekable();
    loop {
        match (ai.peek(), bi.peek()) {
            (Some(x), Some(y)) => {
                let ord = x
                    .partition
                    .cmp(&y.partition)
                    .then_with(|| cmp.compare(&x.key, &y.key));
                if ord == std::cmp::Ordering::Greater {
                    out.push(bi.next().expect("peeked"));
                } else {
                    out.push(ai.next().expect("peeked"));
                }
            }
            (Some(_), None) => out.push(ai.next().expect("peeked")),
            (None, Some(_)) => out.push(bi.next().expect("peeked")),
            (None, None) => break,
        }
    }
    out
}

impl<K, V> OutputCollector<K, V> for SortBuffer<K, V>
where
    K: Writable + Clone + Send + Sync,
    V: Writable + Clone + Send + Sync,
{
    fn collect(&mut self, key: Arc<K>, value: Arc<V>) -> Result<()> {
        let partition = self
            .partitioner
            .partition(&key, &value, self.num_partitions);
        if partition >= self.num_partitions {
            return Err(HmrError::InvalidJob(format!(
                "partitioner returned {partition} for {} partitions",
                self.num_partitions
            )));
        }
        // "immediately serialized and placed in a buffer"
        let mut kbytes = Vec::new();
        key.write_to(&mut kbytes);
        let mut vbytes = Vec::new();
        value.write_to(&mut vbytes);
        meter::charge(Charge::Serialize {
            bytes: (kbytes.len() + vbytes.len()) as u64,
        });
        self.buffered_bytes += kbytes.len() + vbytes.len();
        self.emitted += 1;
        self.records.push(Rec {
            partition: partition as u32,
            key: (*key).clone(),
            kbytes,
            vbytes,
        });
        if self.buffered_bytes >= self.threshold_bytes {
            self.spill()?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hmr_api::conf::JobConf;
    use hmr_api::distcache::DistCache;
    use hmr_api::partition::HashPartitioner;
    use hmr_api::task::LongSumReducer;
    use hmr_api::writable::{LongWritable, Text};

    fn ctx() -> TaskContext {
        TaskContext::new(
            "c_0",
            Arc::new(JobConf::new()),
            Arc::new(DistCache::empty()),
        )
    }

    fn buffer(
        parts: usize,
        threshold: usize,
        combiner: bool,
    ) -> SortBuffer<Text, LongWritable> {
        SortBuffer::new(
            parts,
            threshold,
            Box::new(HashPartitioner),
            KeyComparator::natural(),
            KeyComparator::natural(),
            if combiner {
                Some(Box::new(LongSumReducer))
            } else {
                None
            },
            ctx(),
        )
    }

    fn collect_all(buf: &mut SortBuffer<Text, LongWritable>, words: &[&str]) {
        for w in words {
            buf.collect(Arc::new(Text::from(*w)), Arc::new(LongWritable(1)))
                .unwrap();
        }
    }

    fn decode_all(segments: &[Bytes]) -> Vec<(String, i64)> {
        let mut out = Vec::new();
        for seg in segments {
            for (k, v) in decode_segment::<Text, LongWritable>(seg).unwrap() {
                out.push((k.as_str().to_string(), v.0));
            }
        }
        out
    }

    #[test]
    fn records_come_out_partitioned_and_sorted() {
        let mut buf = buffer(4, usize::MAX, false);
        collect_all(&mut buf, &["delta", "alpha", "charlie", "bravo", "alpha"]);
        let (segments, _) = buf.finish(None).unwrap();
        assert_eq!(segments.len(), 4);
        // Within each partition, keys are sorted.
        for seg in &segments {
            let recs = decode_segment::<Text, LongWritable>(seg).unwrap();
            for w in recs.windows(2) {
                assert!(w[0].0 <= w[1].0, "partition not sorted");
            }
        }
        // All five records survive.
        assert_eq!(decode_all(&segments).len(), 5);
    }

    #[test]
    fn small_threshold_forces_spills_and_merge_preserves_data() {
        let mut buf = buffer(2, 32, false);
        let words: Vec<String> = (0..100).map(|i| format!("w{:03}", i % 10)).collect();
        let refs: Vec<&str> = words.iter().map(String::as_str).collect();
        collect_all(&mut buf, &refs);
        assert!(buf.spill_count() > 1, "tiny threshold must spill repeatedly");
        let (segments, _) = buf.finish(None).unwrap();
        let mut all = decode_all(&segments);
        assert_eq!(all.len(), 100);
        all.sort();
        assert_eq!(all[0].0, "w000");
    }

    #[test]
    fn combiner_collapses_duplicate_keys_per_spill() {
        let mut buf = buffer(1, usize::MAX, true);
        collect_all(&mut buf, &["a", "b", "a", "a", "b"]);
        let (segments, counters) = buf.finish(None).unwrap();
        let mut recs = decode_all(&segments);
        recs.sort();
        assert_eq!(recs, vec![("a".to_string(), 3), ("b".to_string(), 2)]);
        assert_eq!(counters.task(task_counter::COMBINE_INPUT_RECORDS), 5);
        assert_eq!(counters.task(task_counter::COMBINE_OUTPUT_RECORDS), 2);
    }

    #[test]
    fn combiner_is_per_spill_not_global() {
        // Two spills each holding one "a": the combiner runs per spill, so
        // both partial sums survive into the segments (the reducer finishes
        // the job) — exactly Hadoop behaviour.
        let mut buf = buffer(1, 8, true);
        collect_all(&mut buf, &["a"]);
        assert_eq!(buf.spill_count(), 1);
        collect_all(&mut buf, &["a"]);
        let (segments, _) = buf.finish(None).unwrap();
        let recs = decode_all(&segments);
        assert_eq!(recs, vec![("a".to_string(), 1), ("a".to_string(), 1)]);
    }

    #[test]
    fn serialization_and_spill_costs_are_charged() {
        let cluster = simgrid::Cluster::new(1, simgrid::CostModel::default());
        let before = cluster.metrics().snapshot();
        simgrid::with_meter(simgrid::Meter::new(cluster.node(0).clone()), || {
            let mut buf = buffer(2, 64, false);
            let words: Vec<String> = (0..50).map(|i| format!("word{i}")).collect();
            let refs: Vec<&str> = words.iter().map(String::as_str).collect();
            collect_all(&mut buf, &refs);
            let _ = buf.finish(None).unwrap();
        });
        let d = cluster.metrics().snapshot().since(&before);
        assert!(d.ser_bytes > 0, "collect serializes");
        assert!(d.disk_bytes_written > 0, "spills hit local disk");
        assert!(d.records_sorted >= 50, "spill sorting recorded");
    }

    #[test]
    fn segment_roundtrip() {
        let mut seg = Vec::new();
        let k = Text::from("key");
        let v = LongWritable(77);
        let mut kb = Vec::new();
        k.write_to(&mut kb);
        let mut vb = Vec::new();
        v.write_to(&mut vb);
        frame_record(&mut seg, &kb, &vb);
        frame_record(&mut seg, &kb, &vb);
        let recs = decode_segment::<Text, LongWritable>(&seg).unwrap();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].0.as_str(), "key");
        assert_eq!(recs[1].1 .0, 77);
    }

    #[test]
    fn bad_partitioner_is_an_error() {
        let mut buf: SortBuffer<Text, LongWritable> = SortBuffer::new(
            2,
            usize::MAX,
            Box::new(hmr_api::partition::FnPartitioner::new(|_, _, _| 99)),
            KeyComparator::natural(),
            KeyComparator::natural(),
            None,
            ctx(),
        );
        assert!(buf
            .collect(Arc::new(Text::from("x")), Arc::new(LongWritable(1)))
            .is_err());
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use hmr_api::comparator::KeyComparator;
    use hmr_api::conf::JobConf;
    use hmr_api::distcache::DistCache;
    use hmr_api::partition::HashPartitioner;
    use hmr_api::writable::{IntWritable, Text};
    use proptest::prelude::*;

    proptest! {
        /// Whatever the record stream and spill threshold, the buffer's
        /// output preserves the exact multiset of records, routes every
        /// record to the hash partition of its key, and sorts each
        /// partition by the sort comparator.
        #[test]
        fn spill_merge_preserves_multiset_and_order(
            keys in proptest::collection::vec(0i32..50, 0..120),
            threshold in 16usize..4096,
            partitions in 1usize..6,
        ) {
            let ctx = TaskContext::new(
                "prop",
                Arc::new(JobConf::new()),
                Arc::new(DistCache::empty()),
            );
            let mut buf: SortBuffer<Text, IntWritable> = SortBuffer::new(
                partitions,
                threshold,
                Box::new(HashPartitioner),
                KeyComparator::natural(),
                KeyComparator::natural(),
                None,
                ctx,
            );
            for (i, k) in keys.iter().enumerate() {
                buf.collect(
                    Arc::new(Text::from(format!("k{k:03}"))),
                    Arc::new(IntWritable(i as i32)),
                )
                .unwrap();
            }
            let (segments, _) = buf.finish(None).unwrap();
            prop_assert_eq!(segments.len(), partitions);

            let mut seen: Vec<(String, i32)> = Vec::new();
            for (p, seg) in segments.iter().enumerate() {
                let recs = decode_segment::<Text, IntWritable>(seg).unwrap();
                let mut prev: Option<String> = None;
                for (k, v) in recs {
                    let ks = k.as_str().to_string();
                    // Routed to the right partition.
                    let expect_p = hmr_api::partition::stable_hash(&*k) % partitions as u64;
                    prop_assert_eq!(p as u64, expect_p);
                    // Sorted within the partition.
                    if let Some(prev) = &prev {
                        prop_assert!(prev <= &ks);
                    }
                    prev = Some(ks.clone());
                    seen.push((ks, v.0));
                }
            }
            // Exact multiset of inputs.
            let mut expect: Vec<(String, i32)> = keys
                .iter()
                .enumerate()
                .map(|(i, k)| (format!("k{k:03}"), i as i32))
                .collect();
            expect.sort();
            seen.sort();
            prop_assert_eq!(seen, expect);
        }
    }
}
