#![warn(missing_docs)]
#![allow(clippy::type_complexity)]

//! # hadoop-engine — the baseline Hadoop MapReduce engine (paper §3.1)
//!
//! A faithful cost-model reproduction of the stock engine's execution flow,
//! the comparator in every figure of the M3R paper:
//!
//! 1. the client *submits* the job to a jobtracker (staging cost);
//! 2. map tasks are scheduled onto tasktrackers in heartbeat-paced waves,
//!    each task starting a **fresh JVM** (startup cost) — nothing survives
//!    between tasks or jobs;
//! 3. mappers read their split from the DFS (disk + network unless local),
//!    deserialize it, and emit into a [`sortbuffer::SortBuffer`] that
//!    serializes immediately, sorts and spills to local disk, runs the
//!    combiner per spill, and merges spills into per-partition segments;
//! 4. reducers fetch every mapper's segment over disk + network — "all
//!    shuffled data is serialized and communicated via local files and
//!    network and therefore there is equal cost for all destinations"
//!    (§6.1): Hadoop has no local-shuffle fast path, so the full cost is
//!    charged regardless of co-location;
//! 5. reduce output is serialized and written to the DFS with replication.
//!
//! All user code really executes (outputs are verified against M3R in the
//! integration tests); only time is simulated.

pub mod sortbuffer;

use std::sync::Arc;
use std::time::Instant;

use bytes::{Bytes, BytesMut};
use hmr_api::collect::{MapCollector, OutputCollector, VecCollector};
use hmr_api::comparator::{ingest_reduce_groups, SortTuning};
use hmr_api::conf::JobConf;
use hmr_api::counters::{task_counter, Counters, TaskContext};
use hmr_api::distcache::DistCache;
use hmr_api::error::{HmrError, Result};
use hmr_api::fs::FileSystem;
use hmr_api::io::{InputFormat, InputSplit, OutputFormat, RecordWriter};
use hmr_api::job::{Engine, JobDef, JobResult, LaneEngine};
use hmr_api::writable::Writable;
use simgrid::cost::Charge;
use simgrid::trace::{self, Phase};
use simgrid::{Arena, BufPool, Cluster, Meter, NodeId};

use sortbuffer::{decode_segment, frame_record, SortBuffer};

/// Counter group for Hadoop-engine statistics (mirrors the `m3r` group).
pub const HADOOP_COUNTER_GROUP: &str = "hadoop";

/// Tuning knobs of the simulated Hadoop installation.
#[derive(Clone, Debug)]
pub struct EngineOptions {
    /// Concurrent map tasks per node (paper testbed: 8 cores/node).
    pub map_slots_per_node: usize,
    /// Concurrent reduce tasks per node.
    pub reduce_slots_per_node: usize,
    /// `io.sort.mb` analogue: map output buffered before spilling.
    pub sort_buffer_bytes: usize,
    /// Task attempts before the job fails (`mapred.map.max.attempts`).
    /// This is the resilience M3R deliberately gives up (§1): "if a node
    /// fails, the job controller has enough information to restart the
    /// computation ... there is no need to restart the entire job."
    pub max_task_attempts: usize,
    /// Execute each tasktracker wave's slots on real OS threads instead of
    /// sequentially. Wall-clock only: simulated seconds, outputs and
    /// counters are bit-identical either way — every task bills its own
    /// scratch clock and results are folded in task order.
    pub real_parallelism: bool,
    /// Draw map-output segment buffers from a per-node [`BufPool`] and
    /// reclaim them after the job. Wall-clock only: segment bytes, charges
    /// and outputs are bit-identical with the pool off.
    pub buffer_pool: bool,
    /// Opt-in node-level shared combining (the Hadoop-engine analogue of
    /// M3R's place-level combine): after each map wave, the wave's
    /// per-partition segments are decoded, merged through the job's
    /// combiner and re-framed into one segment, shrinking what reducers
    /// fetch. Requires an associative and commutative combiner (see
    /// `hmr_api::conf::PLACE_COMBINE`, which can also enable this per
    /// job); jobs without a combiner are unaffected. Off (the default) is
    /// bit-identical to pre-combine behaviour.
    pub node_combine: bool,
    /// Hash-grouped reduce ingest (ISSUE 8): natural-order reduces group
    /// through a raw-key hash table draining in ascending key order instead
    /// of a full sort. Wall-clock only — outputs, counters and simulated
    /// seconds are bit-identical with the flag off; custom comparators
    /// always take the sort path. The per-job `m3r.reduce.hash.group` conf
    /// knob can also force it off.
    pub hash_group_ingest: bool,
    /// Arena-per-wave allocation (ISSUE 8): reduce/combine scratch is
    /// leased from a per-node [`Arena`] and recycled at wave end. Wall-clock
    /// only; retention is accounted to [`simgrid::MemClass::Arena`], which
    /// budgets deliberately ignore.
    pub arena: bool,
    /// Cross-job result memoization (ISSUE 10): retain finished jobs'
    /// output bytes under a content fingerprint and replay a byte-identical
    /// resubmission without re-running it. Whole-job hits only — the
    /// Hadoop engine keeps nothing between jobs (segments die with the job,
    /// every task starts a fresh JVM), so there are no shuffle-stable
    /// retained partitions to replay a map-prefix match from; that sub-job
    /// path is M3R-only. Off (the default) is bit-identical to
    /// pre-memoization behaviour; the per-job `m3r.memo.enable` conf knob
    /// can also opt a single job in.
    pub memoize: bool,
}

impl Default for EngineOptions {
    fn default() -> Self {
        EngineOptions {
            map_slots_per_node: 8,
            reduce_slots_per_node: 8,
            sort_buffer_bytes: 1 << 20,
            max_task_attempts: 4,
            real_parallelism: true,
            buffer_pool: true,
            node_combine: false,
            hash_group_ingest: true,
            arena: true,
            memoize: false,
        }
    }
}

/// The stock Hadoop MapReduce engine over a simulated cluster.
pub struct HadoopEngine {
    cluster: Cluster,
    fs: Arc<dyn FileSystem>,
    opts: EngineOptions,
    /// One segment-buffer pool per node. The engine object is long-lived
    /// even though simulated tasks are not, so buffers recycle across jobs.
    pools: Vec<Arc<BufPool>>,
    /// One scratch arena per node, persisted across jobs like the pools.
    arenas: Vec<Arc<Arena>>,
    /// Cross-job reuse index (ISSUE 10). Lives on the engine object — like
    /// the pools, it is the engine's long-lived state across simulated
    /// jobs even though simulated tasks are not.
    memo: Arc<m3r_memo::ReuseIndex>,
}

impl HadoopEngine {
    /// An engine with default options.
    pub fn new(cluster: Cluster, fs: Arc<dyn FileSystem>) -> Self {
        HadoopEngine::with_options(cluster, fs, EngineOptions::default())
    }

    /// An engine with explicit options.
    pub fn with_options(cluster: Cluster, fs: Arc<dyn FileSystem>, opts: EngineOptions) -> Self {
        assert!(opts.map_slots_per_node >= 1 && opts.reduce_slots_per_node >= 1);
        let pools = (0..cluster.len())
            .map(|node| {
                Arc::new(BufPool::with_accounting(
                    cluster.metrics().clone(),
                    cluster.mem().clone(),
                    node,
                ))
            })
            .collect();
        let arenas = (0..cluster.len())
            .map(|node| Arc::new(Arena::with_accounting(cluster.mem().clone(), node)))
            .collect();
        // Memo entries are budget-live retained state; govern them whenever
        // the cluster runs under a memory budget so they compete (and are
        // dropped) like everything else.
        let memo = Arc::new(match cluster.mem().budget() {
            Some(_) => m3r_memo::ReuseIndex::governed(cluster.len(), cluster.mem().clone()),
            None => m3r_memo::ReuseIndex::new(cluster.len()),
        });
        memo.publish_telemetry(cluster.telemetry());
        HadoopEngine {
            cluster,
            fs,
            opts,
            pools,
            arenas,
            memo,
        }
    }

    /// The per-node segment buffer pools (test/bench introspection).
    pub fn buffer_pools(&self) -> &[Arc<BufPool>] {
        &self.pools
    }

    /// The per-node scratch arenas (test/bench introspection).
    pub fn arenas(&self) -> &[Arc<Arena>] {
        &self.arenas
    }

    /// The simulated cluster.
    pub fn cluster(&self) -> &Cluster {
        &self.cluster
    }

    /// The job filesystem.
    pub fn fs(&self) -> &Arc<dyn FileSystem> {
        &self.fs
    }

    /// The cross-job reuse index (test/bench/report introspection).
    pub fn memo(&self) -> &Arc<m3r_memo::ReuseIndex> {
        &self.memo
    }

    /// The memo eligibility gate: `Some(basis)` iff this job can
    /// participate in cross-job memoization. Mirrors the M3R engine's gate
    /// (enabled, declared identity, real reduce phase, durable non-temp
    /// output, every input content-versioned) with the engine name
    /// `"hadoop"` in the basis — the two engines never share entries.
    fn memo_basis<J: JobDef>(&self, job: &J, conf: &JobConf) -> Option<m3r_memo::FingerprintBasis> {
        if !(self.opts.memoize || conf.memo_enable()) {
            return None;
        }
        let identity = job.memo_identity()?;
        if conf.num_reduce_tasks() == 0 {
            return None;
        }
        let out = conf.output_path()?;
        if conf.is_temp_output(&out) {
            return None;
        }
        m3r_memo::FingerprintBasis::gather(&*self.fs, conf, &identity, "hadoop", &[])
    }

    /// Replay a retained whole-job result: write the stored part bytes and
    /// the `_SUCCESS` marker into the submitted conf's output directory,
    /// all unmetered — the resubmission "runs" in ~0 simulated seconds
    /// with zero map/shuffle spans. The trace still opens a job so rollup
    /// job numbering tracks submission order; it simply has no spans.
    fn replay_full(
        &self,
        cluster: &Cluster,
        conf: &JobConf,
        hit: m3r_memo::FullHit,
        t0: f64,
        m0: &simgrid::metrics::MetricsSnapshot,
    ) -> Result<JobResult> {
        cluster
            .trace()
            .begin_job(&format!("{} (hadoop memo)", conf.job_name()));
        let out_dir = conf.output_path().expect("memo_basis gated on output");
        for (name, bytes) in &hit.parts {
            let path = out_dir.join(name);
            if self.fs.exists(&path) {
                self.fs.delete(&path, false)?;
            }
            hmr_api::fs::write_file(&*self.fs, &path, bytes)?;
        }
        let marker = out_dir.join("_SUCCESS");
        if !self.fs.exists(&marker) {
            self.fs.create(&marker)?.close()?;
        }
        let t_end = cluster.max_time();
        for node in cluster.nodes() {
            node.clock().advance_to(t_end);
        }
        Ok(JobResult {
            sim_time: t_end - t0,
            counters: hit.counters,
            metrics: cluster.metrics().snapshot().since(m0),
            output_records: hit.output_records,
        })
    }

    /// Read the finished job's part files back (unmetered) and retain them
    /// under its whole-job fingerprint. Best-effort: an unreadable output
    /// directory just skips recording — memoization must never fail a job
    /// that already succeeded.
    fn memo_record_full(
        &self,
        basis: &m3r_memo::FingerprintBasis,
        conf: &JobConf,
        counters: &Counters,
        output_records: u64,
    ) {
        let Some(out_dir) = conf.output_path() else {
            return;
        };
        let Ok(listing) = self.fs.list_status(&out_dir) else {
            return;
        };
        let mut parts = Vec::new();
        for st in listing {
            if st.is_dir {
                continue;
            }
            let name = st.path.name().unwrap_or_default().to_string();
            if name == "_SUCCESS" {
                continue;
            }
            match hmr_api::fs::read_file(&*self.fs, &st.path) {
                Ok(bytes) => parts.push((name, bytes)),
                Err(_) => return,
            }
        }
        parts.sort_by(|a, b| a.0.cmp(&b.0));
        self.memo.record_full(
            basis.job_fingerprint(),
            basis.input_versions().to_vec(),
            parts,
            counters.clone(),
            output_records,
        );
    }
}

/// Reducer-side output collector writing through the job's `RecordWriter`,
/// with lazy named side outputs (`MultipleOutputs`).
struct WriterCollector<'a, K, V> {
    writer: Box<dyn RecordWriter<K, V>>,
    named: std::collections::BTreeMap<String, Box<dyn RecordWriter<K, V>>>,
    format: &'a dyn OutputFormat<K, V>,
    fs: &'a dyn FileSystem,
    conf: &'a JobConf,
    partition: usize,
    records: u64,
}

impl<K: Writable, V: Writable> WriterCollector<'_, K, V> {
    fn close(self) -> Result<u64> {
        self.writer.close()?;
        for (_, w) in self.named {
            w.close()?;
        }
        Ok(self.records)
    }
}

impl<K: Writable, V: Writable> OutputCollector<K, V> for WriterCollector<'_, K, V> {
    fn collect(&mut self, key: Arc<K>, value: Arc<V>) -> Result<()> {
        simgrid::meter::charge(Charge::Serialize {
            bytes: (key.serialized_size() + value.serialized_size()) as u64,
        });
        self.writer.write(&key, &value)?;
        self.records += 1;
        Ok(())
    }

    fn collect_named(&mut self, name: &str, key: Arc<K>, value: Arc<V>) -> Result<()> {
        if !self.named.contains_key(name) {
            let w = self
                .format
                .record_writer_named(self.fs, self.conf, name, self.partition)?;
            self.named.insert(name.to_string(), w);
        }
        simgrid::meter::charge(Charge::Serialize {
            bytes: (key.serialized_size() + value.serialized_size()) as u64,
        });
        self.named
            .get_mut(name)
            .expect("inserted above")
            .write(&key, &value)?;
        self.records += 1;
        Ok(())
    }
}

/// Outcome of one map task.
struct MapTaskOutput {
    /// Per-partition serialized segments (empty for map-only jobs), held
    /// by refcount and read in place by reduce tasks.
    segments: Vec<Bytes>,
    counters: Counters,
    output_records: u64,
}

impl Engine for HadoopEngine {
    fn engine_name(&self) -> &'static str {
        "hadoop"
    }

    fn run_job<J: JobDef>(&mut self, job: Arc<J>, conf: &JobConf) -> Result<JobResult> {
        let cluster = self.cluster.clone();
        self.run_job_inner(&cluster, job, conf)
    }
}

impl LaneEngine for HadoopEngine {
    fn home(&self) -> &Cluster {
        &self.cluster
    }

    fn run_lane<J: JobDef>(
        &self,
        lane: &Cluster,
        _seq: u64,
        job: Arc<J>,
        conf: &JobConf,
    ) -> Result<JobResult> {
        // Hadoop keeps nothing between jobs (no cache, no quotas), so
        // the sequence number is irrelevant and lanes never need to be
        // serialized: the default `exclusive_only` (false) stands.
        self.run_job_inner(lane, job, conf)
    }

    fn try_memo_replay<J: JobDef>(
        &self,
        job: &Arc<J>,
        conf: &JobConf,
    ) -> Option<Result<JobResult>> {
        let basis = self.memo_basis(&**job, conf)?;
        let hit = self.memo.lookup_full(basis.job_fingerprint(), &*self.fs)?;
        let t0 = self.cluster.max_time();
        let m0 = self.cluster.metrics().snapshot();
        Some(self.replay_full(&self.cluster, conf, hit, t0, &m0))
    }
}

impl HadoopEngine {
    /// The shared body of [`Engine::run_job`] and [`LaneEngine::run_lane`]:
    /// run one job against `cluster` — the home cluster on the classic
    /// blocking path, a [`Cluster::job_lane`] for server submissions.
    fn run_job_inner<J: JobDef>(
        &self,
        cluster: &Cluster,
        job: Arc<J>,
        conf: &JobConf,
    ) -> Result<JobResult> {
        let cluster = cluster.clone();
        let nnodes = cluster.len();
        let t0 = cluster.max_time();
        let m0 = cluster.metrics().snapshot();
        let conf = Arc::new(conf.clone());

        // Cross-job memoization (ISSUE 10): a whole-job hit replays the
        // retained output bytes before the job even opens — no submission,
        // no JVM startups, no map/shuffle/reduce. Checked before
        // `begin_job` so the replay's own (span-free) trace job keeps
        // rollup numbering aligned with submission order.
        let memo_basis = self.memo_basis(&*job, &conf);
        if let Some(basis) = &memo_basis {
            match self.memo.lookup_full(basis.job_fingerprint(), &*self.fs) {
                Some(hit) => return self.replay_full(&cluster, &conf, hit, t0, &m0),
                None => self.memo.note_miss(),
            }
        }

        let tjob = cluster
            .trace()
            .begin_job(&format!("{} (hadoop)", conf.job_name()));

        // Submission: jobid from the jobtracker, job configuration and user
        // code staged to the jobtracker's filesystem (§3.1). Charged through
        // the meter so the submit span captures it; the charge itself is
        // identical with tracing on or off.
        simgrid::with_meter(Meter::new(cluster.node(0).clone()), || {
            trace::span(Phase::Submit, "submit", None, || {
                simgrid::meter::charge(Charge::JobSubmit);
            });
        });

        let input_format = job.input_format(&conf);
        let output_format = job.output_format(&conf);
        let splits = input_format.get_splits(
            &*self.fs,
            &conf,
            nnodes * self.opts.map_slots_per_node,
        )?;
        let num_reducers = conf.num_reduce_tasks();
        // Sort/group tuning for this job: process defaults and env
        // overrides, then conf knobs, gated by the engine option.
        let tuning = {
            let mut t = SortTuning::for_job(&conf);
            t.hash_group &= self.opts.hash_group_ingest;
            t
        };
        let convert = if num_reducers == 0 {
            Some(job.map_only_convert().ok_or_else(|| {
                HmrError::InvalidJob(
                    "0 reducers requires JobDef::map_only_convert (map-only job)".into(),
                )
            })?)
        } else {
            None
        };

        // Distributed cache staging, charged to the submitting node.
        let dist_cache = Arc::new(simgrid::with_meter(
            Meter::new(cluster.node(0).clone()),
            || trace::span(Phase::Setup, "dist_cache", None, || DistCache::load(&conf, &*self.fs)),
        )?);

        // ---- map phase -----------------------------------------------------
        // "The map tasks (allocated close to their corresponding
        // InputSplits)": assign each split to its first replica host.
        let assigns: Vec<NodeId> = splits
            .iter()
            .enumerate()
            .map(|(i, s)| s.locations().first().copied().unwrap_or(i % nnodes) % nnodes)
            .collect();
        let mut per_node: Vec<Vec<usize>> = vec![Vec::new(); nnodes];
        for (i, &n) in assigns.iter().enumerate() {
            per_node[n].push(i);
        }

        let mut counters = Counters::new();
        let mut map_outputs: Vec<Vec<Bytes>> = (0..splits.len()).map(|_| Vec::new()).collect();
        let mut output_records = 0u64;
        // Node-level shared combine (M3R's place-level combine, ROADMAP
        // item 3): only meaningful with reducers to shuffle to and a
        // combiner to merge with.
        let node_combine = (self.opts.node_combine || conf.place_level_combine())
            && num_reducers > 0
            && job.create_combiner(&conf).is_some();

        for (node_id, tasks) in per_node.iter().enumerate() {
            let node = cluster.node(node_id);
            // Tasks run in slot-parallel waves; the tasktracker receives
            // work one heartbeat at a time. With `real_parallelism` the
            // slots are real scoped threads; either way each task bills its
            // own scratch clock and results are folded in task order.
            for wave in tasks.chunks(self.opts.map_slots_per_node) {
                simgrid::with_meter(Meter::new(node.clone()), || {
                    trace::span(Phase::Barrier, "heartbeat", None, || {
                        simgrid::meter::charge(Charge::Heartbeat);
                    });
                });
                let wave_base = node.clock().now();
                let (results, scratches) = simgrid::pool::run_wave(
                    &cluster,
                    node_id,
                    self.opts.real_parallelism,
                    wave.to_vec(),
                    |task: usize| {
                        // "If a node fails, the job controller ... restart[s]
                        // the computation" — failed attempts are retried
                        // (each paying startup again) up to the attempt
                        // limit.
                        let r = trace::span(Phase::Map, "map", Some(task as u64), || {
                            retry_attempts(self.opts.max_task_attempts, || {
                                run_map_task(
                                    &*job,
                                    &conf,
                                    &*self.fs,
                                    &*input_format,
                                    &*output_format,
                                    splits[task].as_ref(),
                                    task,
                                    num_reducers,
                                    convert.clone(),
                                    &dist_cache,
                                    self.opts.sort_buffer_bytes,
                                    self.opts.buffer_pool.then(|| &*self.pools[node_id]),
                                )
                            })
                            .map(|out| (task, out))
                        });
                        (r, trace::take_pending())
                    },
                );
                for (result, task_spans) in results {
                    cluster
                        .trace()
                        .record_rebased(tjob, node_id, wave_base, task_spans);
                    let (task, out) = result?;
                    counters.merge(&out.counters);
                    output_records += out.output_records;
                    // Segments are parked on the producing node until the
                    // reducers fetch them — live shuffle memory there.
                    let seg_bytes: u64 = out.segments.iter().map(|s| s.len() as u64).sum();
                    cluster
                        .mem()
                        .grow(node_id, simgrid::MemClass::Shuffle, seg_bytes);
                    map_outputs[task] = out.segments;
                }
                node.clock()
                    .advance(simgrid::pool::wave_duration(&scratches));
                if node_combine {
                    let wave_counters = combine_wave_segments(
                        &*job,
                        &conf,
                        &cluster,
                        node_id,
                        wave,
                        &mut map_outputs,
                        num_reducers,
                        self.opts.buffer_pool.then(|| &*self.pools[node_id]),
                        &dist_cache,
                        &tuning,
                        self.opts.arena.then(|| &*self.arenas[node_id]),
                    )?;
                    counters.merge(&wave_counters);
                }
                if self.opts.arena {
                    self.arenas[node_id].end_wave();
                }
            }
        }

        // What the reducers will actually fetch — the engine's shuffle
        // volume after any node-level combining. Recorded unconditionally
        // so combine-on/off benches compare like for like.
        let seg_bytes_total: i64 = map_outputs
            .iter()
            .flat_map(|segs| segs.iter())
            .map(|s| s.len() as i64)
            .sum();
        counters.incr(HADOOP_COUNTER_GROUP, "SHUFFLE_SEGMENT_BYTES", seg_bytes_total);

        // ---- reduce phase ---------------------------------------------------
        if num_reducers > 0 {
            // No reducer finishes its sort before the last mapper is done;
            // the jobtracker notices completion on a heartbeat.
            let all_maps_done = cluster.max_time();
            for node in cluster.nodes() {
                node.clock().advance_to(all_maps_done);
            }

            let r_assigns: Vec<NodeId> = (0..num_reducers).map(|p| p % nnodes).collect();
            let mut per_node_r: Vec<Vec<usize>> = vec![Vec::new(); nnodes];
            for (p, &n) in r_assigns.iter().enumerate() {
                per_node_r[n].push(p);
            }
            for (node_id, parts) in per_node_r.iter().enumerate() {
                let node = cluster.node(node_id);
                for wave in parts.chunks(self.opts.reduce_slots_per_node) {
                    simgrid::with_meter(Meter::new(node.clone()), || {
                        trace::span(Phase::Barrier, "heartbeat", None, || {
                            simgrid::meter::charge(Charge::Heartbeat);
                        });
                    });
                    let wave_base = node.clock().now();
                    let (results, scratches) = simgrid::pool::run_wave(
                        &cluster,
                        node_id,
                        self.opts.real_parallelism,
                        wave.to_vec(),
                        |partition: usize| {
                            let r = trace::span(
                                Phase::Reduce,
                                "reduce",
                                Some(partition as u64),
                                || {
                                    retry_attempts(self.opts.max_task_attempts, || {
                                        run_reduce_task(
                                            &*job,
                                            &conf,
                                            &*self.fs,
                                            &*output_format,
                                            &map_outputs,
                                            partition,
                                            &dist_cache,
                                            self.opts.sort_buffer_bytes,
                                            &tuning,
                                            self.opts.arena.then(|| &*self.arenas[node_id]),
                                        )
                                    })
                                },
                            );
                            (r, trace::take_pending())
                        },
                    );
                    for (result, task_spans) in results {
                        cluster
                            .trace()
                            .record_rebased(tjob, node_id, wave_base, task_spans);
                        let (task_counters, recs) = result?;
                        counters.merge(&task_counters);
                        output_records += recs;
                    }
                    node.clock()
                        .advance(simgrid::pool::wave_duration(&scratches));
                    if self.opts.arena {
                        self.arenas[node_id].end_wave();
                    }
                }
            }
        }

        // Segments die with the job either way: release their shuffle
        // accounting, and — with the pool on — recycle the buffers into
        // their producing node's pool so the next job's sort buffers start
        // warm. (A handle that a straggling reader still holds simply
        // isn't reclaimed.)
        for (task, segments) in map_outputs.into_iter().enumerate() {
            let node_id = assigns[task];
            let seg_bytes: u64 = segments.iter().map(|s| s.len() as u64).sum();
            cluster
                .mem()
                .shrink(node_id, simgrid::MemClass::Shuffle, seg_bytes);
            if self.opts.buffer_pool {
                let pool = &self.pools[node_id];
                for seg in segments {
                    pool.reclaim(seg);
                }
            }
        }

        // Job commit: _SUCCESS marker in the output directory.
        if let Some(out_dir) = output_format.output_path(&conf) {
            let marker = out_dir.join("_SUCCESS");
            if !self.fs.exists(&marker) {
                let w = self.fs.create(&marker)?;
                w.close()?;
            }
        }

        // Retain the finished job's output for future resubmissions
        // (whole-job only — see `EngineOptions::memoize`).
        if let Some(basis) = &memo_basis {
            self.memo_record_full(basis, &conf, &counters, output_records);
        }

        // The client polls for completion; align clocks at job end.
        let t_end = cluster.max_time();
        for node in cluster.nodes() {
            node.clock().advance_to(t_end);
        }

        Ok(JobResult {
            sim_time: t_end - t0,
            counters,
            metrics: cluster.metrics().snapshot().since(&m0),
            output_records,
        })
    }
}

/// Run `attempt` up to `max_attempts` times, returning the first success
/// or the last error — the jobtracker's retry loop. Each attempt performs
/// (and is charged for) its full startup + work again.
fn retry_attempts<T>(
    max_attempts: usize,
    mut attempt: impl FnMut() -> Result<T>,
) -> Result<T> {
    let mut last_err = None;
    for _ in 0..max_attempts.max(1) {
        match attempt() {
            Ok(v) => return Ok(v),
            Err(e) => last_err = Some(e),
        }
    }
    Err(last_err.expect("at least one attempt ran"))
}

/// Node-level shared combine — the Hadoop-engine analogue of M3R's
/// place-level combine table. After a map wave's barrier, each partition's
/// per-task segments are decoded in task order, sorted, merged through the
/// job's combiner, and re-framed into a single segment parked under the
/// wave's first contributing task (the others keep an empty segment, which
/// the reduce fetch already skips). Runs on the tasktracker's driver
/// thread in deterministic partition/task order, billed to the node clock
/// under a [`Phase::Combine`] span. A partition whose decoded working set
/// would breach the memory budget is left untouched: the job degrades to
/// plain per-task streaming without changing outputs.
#[allow(clippy::too_many_arguments)]
fn combine_wave_segments<J: JobDef>(
    job: &J,
    conf: &Arc<JobConf>,
    cluster: &Cluster,
    node_id: NodeId,
    wave: &[usize],
    map_outputs: &mut [Vec<Bytes>],
    num_reducers: usize,
    pool: Option<&BufPool>,
    dist_cache: &Arc<DistCache>,
    tuning: &SortTuning,
    arena: Option<&Arena>,
) -> Result<Counters> {
    let node = cluster.node(node_id);
    let mut combiner = job
        .create_combiner(conf)
        .expect("combine_wave_segments requires a combiner");
    let mut ctx = TaskContext::new(
        format!("combine_n_{node_id:06}"),
        Arc::clone(conf),
        Arc::clone(dist_cache),
    );
    let sort_cmp = job.sort_comparator();
    let group_cmp = job.grouping_comparator();
    simgrid::with_meter(Meter::new(node.clone()), || {
        trace::span(Phase::Combine, "wave", None, || -> Result<()> {
            for partition in 0..num_reducers {
                let contributing: Vec<usize> = wave
                    .iter()
                    .copied()
                    .filter(|&t| map_outputs[t].get(partition).is_some_and(|s| !s.is_empty()))
                    .collect();
                // Nothing merges across fewer than two segments.
                if contributing.len() < 2 {
                    continue;
                }
                let in_bytes: u64 = contributing
                    .iter()
                    .map(|&t| map_outputs[t][partition].len() as u64)
                    .sum();
                // Governor interaction: the decoded working set is combine
                // memory. If it would not fit the budget, skip this
                // partition — reducers fetch the per-task segments as usual.
                if let Some(budget) = cluster.mem().budget() {
                    if cluster.mem().live(node_id) + in_bytes > budget {
                        continue;
                    }
                }
                cluster
                    .mem()
                    .grow(node_id, simgrid::MemClass::Combine, in_bytes);
                let mut pairs: Vec<(Arc<J::K2>, Arc<J::V2>)> = match arena {
                    Some(a) => a.lease(),
                    None => Vec::new(),
                };
                for &t in &contributing {
                    pairs.extend(decode_segment::<J::K2, J::V2>(&map_outputs[t][partition])?);
                }
                simgrid::meter::charge(Charge::Deserialize { bytes: in_bytes });
                let spans =
                    ingest_reduce_groups(&mut pairs, &sort_cmp, &group_cmp, tuning, arena);
                ctx.incr_task_counter(task_counter::COMBINE_INPUT_RECORDS, pairs.len() as i64);
                let mut out: VecCollector<J::K2, J::V2> = VecCollector::new();
                for span in spans {
                    let key = Arc::clone(&pairs[span.start].0);
                    let mut values = pairs[span.clone()].iter().map(|(_, v)| Arc::clone(v));
                    combiner.reduce(key, &mut values, &mut out, &mut ctx)?;
                }
                ctx.incr_task_counter(
                    task_counter::COMBINE_OUTPUT_RECORDS,
                    out.pairs.len() as i64,
                );
                // The inputs are the wave tasks' already-sorted segments, so
                // this is a k-way merge, not a fresh sort: bill one sort-pass
                // record per emitted group (the merge's output walk). That
                // keeps `records_sorted` a net win — reducers re-merge far
                // fewer records than the wave produced.
                simgrid::meter::charge(Charge::Sort {
                    records: out.pairs.len() as u64,
                });
                let mut buf = match pool {
                    Some(p) => p.get_any(in_bytes as usize),
                    None => BytesMut::with_capacity(in_bytes as usize),
                };
                let (mut kbuf, mut vbuf) = (Vec::new(), Vec::new());
                for (k, v) in &out.pairs {
                    kbuf.clear();
                    vbuf.clear();
                    k.write_to(&mut kbuf);
                    v.write_to(&mut vbuf);
                    frame_record(&mut buf, &kbuf, &vbuf);
                }
                let seg = buf.freeze();
                simgrid::meter::charge(Charge::Serialize {
                    bytes: seg.len() as u64,
                });
                // Swap the wave's segments for the combined one; shuffle
                // accounting follows the parked bytes.
                cluster
                    .mem()
                    .shrink(node_id, simgrid::MemClass::Shuffle, in_bytes);
                cluster
                    .mem()
                    .grow(node_id, simgrid::MemClass::Shuffle, seg.len() as u64);
                for &t in &contributing {
                    map_outputs[t][partition] = Bytes::new();
                }
                map_outputs[contributing[0]][partition] = seg;
                cluster
                    .mem()
                    .shrink(node_id, simgrid::MemClass::Combine, in_bytes);
                if let Some(a) = arena {
                    a.recycle(pairs);
                }
            }
            Ok(())
        })
    })?;
    Ok(ctx.into_counters())
}

/// One map task attempt: fresh JVM, split read, real mapper execution,
/// sort/spill/merge (or direct output for map-only jobs).
#[allow(clippy::too_many_arguments)]
fn run_map_task<J: JobDef>(
    job: &J,
    conf: &Arc<JobConf>,
    fs: &dyn FileSystem,
    input_format: &dyn InputFormat<J::K1, J::V1>,
    output_format: &dyn OutputFormat<J::K3, J::V3>,
    split: &dyn InputSplit,
    task_idx: usize,
    num_reducers: usize,
    convert: Option<hmr_api::job::MapOnlyConvert<J::K2, J::V2, J::K3, J::V3>>,
    dist_cache: &Arc<DistCache>,
    sort_buffer_bytes: usize,
    pool: Option<&BufPool>,
) -> Result<MapTaskOutput> {
    simgrid::meter::charge(Charge::TaskStartup);
    let mut ctx = TaskContext::new(
        format!("attempt_m_{task_idx:06}_0"),
        Arc::clone(conf),
        Arc::clone(dist_cache),
    );
    ctx.set_split_tag(hmr_api::multi::split_tag(split));

    let mut mapper = job.create_mapper(conf);
    let mut reader = input_format.record_reader(fs, split, conf)?;
    // Deserializing the split's bytes into objects.
    simgrid::meter::charge(Charge::Deserialize {
        bytes: split.length(),
    });

    if let Some(convert) = convert {
        // Map-only: "output from the mapper is sent directly to output as
        // per Hadoop" (§5.3). The task writes part-<map index>.
        let writer = output_format.record_writer(fs, conf, task_idx)?;
        let mut sink = WriterCollector {
            writer,
            named: std::collections::BTreeMap::new(),
            format: output_format,
            fs,
            conf,
            partition: task_idx,
            records: 0,
        };
        let compute_start = Instant::now();
        {
            let mut out = MapCollector::new(&mut sink, convert);
            mapper.setup(&mut ctx)?;
            while let Some((k, v)) = reader.next()? {
                ctx.incr_task_counter(task_counter::MAP_INPUT_RECORDS, 1);
                ctx.incr_task_counter(task_counter::MAP_OUTPUT_RECORDS, 1);
                mapper.map(Arc::new(k), Arc::new(v), &mut out, &mut ctx)?;
            }
            mapper.cleanup(&mut out, &mut ctx)?;
        }
        simgrid::meter::charge(Charge::Compute {
            seconds: compute_start.elapsed().as_secs_f64(),
        });
        let records = sink.close()?;
        return Ok(MapTaskOutput {
            segments: Vec::new(),
            counters: ctx.into_counters(),
            output_records: records,
        });
    }

    let mut buffer = SortBuffer::new(
        num_reducers,
        sort_buffer_bytes,
        job.partitioner(conf),
        job.sort_comparator(),
        job.grouping_comparator(),
        job.create_combiner(conf),
        TaskContext::new(
            format!("combiner_m_{task_idx:06}"),
            Arc::clone(conf),
            Arc::clone(dist_cache),
        ),
    );
    let compute_start = Instant::now();
    mapper.setup(&mut ctx)?;
    let mut in_records = 0i64;
    while let Some((k, v)) = reader.next()? {
        in_records += 1;
        mapper.map(Arc::new(k), Arc::new(v), &mut buffer, &mut ctx)?;
    }
    mapper.cleanup(&mut buffer, &mut ctx)?;
    simgrid::meter::charge(Charge::Compute {
        seconds: compute_start.elapsed().as_secs_f64(),
    });
    ctx.incr_task_counter(task_counter::MAP_INPUT_RECORDS, in_records);
    ctx.incr_task_counter(
        task_counter::MAP_OUTPUT_RECORDS,
        buffer.emitted_records() as i64,
    );
    let (segments, combiner_counters) = buffer.finish(pool)?;
    let mut counters = ctx.into_counters();
    counters.merge(&combiner_counters);
    Ok(MapTaskOutput {
        segments,
        counters,
        output_records: 0,
    })
}

/// One reduce task attempt: fetch every mapper's segment (disk + network —
/// Hadoop's shuffle has no local fast path), merge-sort out of core, group,
/// run the real reducer, write to the DFS.
#[allow(clippy::too_many_arguments)]
fn run_reduce_task<J: JobDef>(
    job: &J,
    conf: &Arc<JobConf>,
    fs: &dyn FileSystem,
    output_format: &dyn OutputFormat<J::K3, J::V3>,
    map_outputs: &[Vec<Bytes>],
    partition: usize,
    dist_cache: &Arc<DistCache>,
    sort_buffer_bytes: usize,
    tuning: &SortTuning,
    arena: Option<&Arena>,
) -> Result<(Counters, u64)> {
    simgrid::meter::charge(Charge::TaskStartup);
    let mut ctx = TaskContext::new(
        format!("attempt_r_{partition:06}_0"),
        Arc::clone(conf),
        Arc::clone(dist_cache),
    );
    ctx.set_partition(Some(partition));

    // Shuffle fetch: every map task's segment for this partition. The
    // pair vector is leased from the node's arena so successive reduce
    // waves reuse grown capacity instead of re-allocating (wall-clock
    // only; the charges below are unchanged).
    let mut total_bytes = 0u64;
    let mut pairs: Vec<(Arc<J::K2>, Arc<J::V2>)> = match arena {
        Some(a) => a.lease(),
        None => Vec::new(),
    };
    trace::span(Phase::Shuffle, "fetch", Some(partition as u64), || -> Result<()> {
        for segments in map_outputs {
            let Some(seg) = segments.get(partition) else {
                continue;
            };
            if seg.is_empty() {
                continue;
            }
            let bytes = seg.len() as u64;
            total_bytes += bytes;
            // Read the mapper's local spill file and move it over the
            // network; §6.1: equal cost for all destinations, local or
            // remote.
            simgrid::meter::charge(Charge::DiskRead { bytes });
            simgrid::meter::charge(Charge::NetTransfer { bytes });
            pairs.extend(decode_segment::<J::K2, J::V2>(seg)?);
        }
        simgrid::meter::charge(Charge::Deserialize { bytes: total_bytes });
        Ok(())
    })?;
    // The ingest kernel (sort-based or hash-grouped) yields groups in the
    // sorted order and bills per record either way — simulated seconds are
    // independent of which path ran.
    let spans = trace::span(Phase::Sort, "sort", Some(partition as u64), || {
        if total_bytes as usize > sort_buffer_bytes {
            // Out-of-core merge: one extra round trip through local disk.
            simgrid::meter::charge(Charge::DiskWrite { bytes: total_bytes });
            simgrid::meter::charge(Charge::DiskRead { bytes: total_bytes });
        }
        simgrid::meter::charge(Charge::Sort {
            records: pairs.len() as u64,
        });
        let sort_cmp = job.sort_comparator();
        let group_cmp = job.grouping_comparator();
        ingest_reduce_groups(&mut pairs, &sort_cmp, &group_cmp, tuning, arena)
    });

    ctx.incr_task_counter(task_counter::REDUCE_INPUT_RECORDS, pairs.len() as i64);
    ctx.incr_task_counter(task_counter::REDUCE_INPUT_GROUPS, spans.len() as i64);

    let writer = output_format.record_writer(fs, conf, partition)?;
    let mut sink = WriterCollector {
        writer,
        named: std::collections::BTreeMap::new(),
        format: output_format,
        fs,
        conf,
        partition,
        records: 0,
    };
    let mut reducer = job.create_reducer(conf);
    let compute_start = Instant::now();
    reducer.setup(&mut ctx)?;
    for span in spans {
        let key = Arc::clone(&pairs[span.start].0);
        let mut values = pairs[span.clone()].iter().map(|(_, v)| Arc::clone(v));
        reducer.reduce(key, &mut values, &mut sink, &mut ctx)?;
    }
    reducer.cleanup(&mut sink, &mut ctx)?;
    simgrid::meter::charge(Charge::Compute {
        seconds: compute_start.elapsed().as_secs_f64(),
    });
    if let Some(a) = arena {
        a.recycle(pairs);
    }
    let records = sink.close()?;
    ctx.incr_task_counter(task_counter::REDUCE_OUTPUT_RECORDS, records as i64);
    Ok((ctx.into_counters(), records))
}

#[cfg(test)]
mod tests {
    use super::*;
    use hmr_api::comparator::KeyComparator;
    use hmr_api::io::seqfile::{read_seq_file, write_seq_file};
    use hmr_api::io::{SequenceFileInputFormat, SequenceFileOutputFormat};
    use hmr_api::task::{IdentityMapper, IdentityReducer, LongSumReducer, TaskMapper, TaskReducer};
    use hmr_api::writable::{LongWritable, Text};
    use hmr_api::HPath;
    use simdfs::SimDfs;
    use simgrid::CostModel;

    /// WordCount: the canonical test job.
    struct WordCount {
        with_combiner: bool,
    }

    struct WcMapper;

    impl TaskMapper<LongWritable, Text, Text, LongWritable> for WcMapper {
        fn map(
            &mut self,
            _key: Arc<LongWritable>,
            value: Arc<Text>,
            out: &mut dyn OutputCollector<Text, LongWritable>,
            _ctx: &mut TaskContext,
        ) -> Result<()> {
            for tok in value.as_str().split_whitespace() {
                out.collect(Arc::new(Text::from(tok)), Arc::new(LongWritable(1)))?;
            }
            Ok(())
        }
    }

    impl JobDef for WordCount {
        type K1 = LongWritable;
        type V1 = Text;
        type K2 = Text;
        type V2 = LongWritable;
        type K3 = Text;
        type V3 = LongWritable;

        fn create_mapper(
            &self,
            _conf: &JobConf,
        ) -> Box<dyn TaskMapper<LongWritable, Text, Text, LongWritable>> {
            Box::new(WcMapper)
        }
        fn create_reducer(
            &self,
            _conf: &JobConf,
        ) -> Box<dyn TaskReducer<Text, LongWritable, Text, LongWritable>> {
            Box::new(LongSumReducer)
        }
        fn create_combiner(
            &self,
            _conf: &JobConf,
        ) -> Option<Box<dyn TaskReducer<Text, LongWritable, Text, LongWritable>>> {
            self.with_combiner.then(|| {
                Box::new(LongSumReducer)
                    as Box<dyn TaskReducer<Text, LongWritable, Text, LongWritable>>
            })
        }
        fn input_format(
            &self,
            _conf: &JobConf,
        ) -> Box<dyn InputFormat<LongWritable, Text>> {
            Box::new(hmr_api::io::TextInputFormat)
        }
        fn output_format(
            &self,
            _conf: &JobConf,
        ) -> Box<dyn OutputFormat<Text, LongWritable>> {
            Box::new(SequenceFileOutputFormat::new())
        }
        fn name(&self) -> &str {
            "wordcount"
        }
    }

    fn setup(nodes: usize) -> (HadoopEngine, SimDfs) {
        let cluster = Cluster::new(nodes, CostModel::default());
        let fs = SimDfs::with_config(cluster.clone(), 1 << 20, 2);
        let engine = HadoopEngine::with_options(
            cluster,
            Arc::new(fs.clone()),
            EngineOptions {
                map_slots_per_node: 2,
                reduce_slots_per_node: 2,
                sort_buffer_bytes: 1 << 16,
                max_task_attempts: 4,
                ..EngineOptions::default()
            },
        );
        (engine, fs)
    }

    fn wc_conf(reducers: usize) -> JobConf {
        let mut conf = JobConf::new();
        conf.add_input_path(&HPath::new("/in"));
        conf.set_output_path(&HPath::new("/out"));
        conf.set_num_reduce_tasks(reducers);
        conf
    }

    fn load_counts(fs: &SimDfs, dir: &str, parts: usize) -> std::collections::BTreeMap<String, i64> {
        let mut m = std::collections::BTreeMap::new();
        for p in 0..parts {
            let path = HPath::new(format!("{dir}/part-{p:05}"));
            if !fs.exists(&path) {
                continue;
            }
            for (k, v) in read_seq_file::<Text, LongWritable>(fs, &path).unwrap() {
                *m.entry(k.as_str().to_string()).or_insert(0) += v.0;
            }
        }
        m
    }

    #[test]
    fn wordcount_produces_correct_counts() {
        let (mut engine, fs) = setup(3);
        hmr_api::fs::write_file(
            &fs,
            &HPath::new("/in/a.txt"),
            b"the quick brown fox\nthe lazy dog\nthe end",
        )
        .unwrap();
        hmr_api::fs::write_file(&fs, &HPath::new("/in/b.txt"), b"quick quick dog").unwrap();
        let result = engine
            .run_job(Arc::new(WordCount { with_combiner: false }), &wc_conf(2))
            .unwrap();
        let counts = load_counts(&fs, "/out", 2);
        assert_eq!(counts["the"], 3);
        assert_eq!(counts["quick"], 3);
        assert_eq!(counts["dog"], 2);
        assert_eq!(counts["end"], 1);
        assert_eq!(result.output_records, counts.len() as u64);
        assert!(fs.exists(&HPath::new("/out/_SUCCESS")));
        // Framework counters line up.
        assert_eq!(result.counters.task(task_counter::MAP_INPUT_RECORDS), 4);
        assert_eq!(result.counters.task(task_counter::MAP_OUTPUT_RECORDS), 12);
        assert_eq!(result.counters.task(task_counter::REDUCE_INPUT_RECORDS), 12);
        assert_eq!(
            result.counters.task(task_counter::REDUCE_OUTPUT_RECORDS),
            counts.len() as i64
        );
        assert!(result.sim_time > 0.0, "time passed");
        assert!(result.metrics.task_startups >= 4, "2 maps + 2 reduces");
    }

    #[test]
    fn combiner_shrinks_shuffle_but_not_answers() {
        let text = "a b a b a b c\n".repeat(50);
        let (mut engine, fs) = setup(2);
        hmr_api::fs::write_file(&fs, &HPath::new("/in/t.txt"), text.as_bytes()).unwrap();
        let without = engine
            .run_job(Arc::new(WordCount { with_combiner: false }), &wc_conf(2))
            .unwrap();
        let counts_plain = load_counts(&fs, "/out", 2);
        fs.delete(&HPath::new("/out"), true).unwrap();
        let with = engine
            .run_job(Arc::new(WordCount { with_combiner: true }), &wc_conf(2))
            .unwrap();
        let counts_comb = load_counts(&fs, "/out", 2);
        assert_eq!(counts_plain, counts_comb, "combiner must not change results");
        assert_eq!(counts_comb["a"], 150);
        assert!(
            with.counters.task(task_counter::REDUCE_INPUT_RECORDS)
                < without.counters.task(task_counter::REDUCE_INPUT_RECORDS),
            "combiner reduces shuffled records"
        );
        assert!(with.counters.task(task_counter::COMBINE_INPUT_RECORDS) > 0);
    }

    #[test]
    fn node_combine_shrinks_segments_but_not_answers() {
        // One split per file: four files give each node a multi-task wave,
        // which is what node-level combining merges across.
        let text = "a b a b a b c\n".repeat(50);
        let (mut engine, fs) = setup(2);
        for i in 0..4 {
            hmr_api::fs::write_file(&fs, &HPath::new(format!("/in/t{i}.txt")), text.as_bytes())
                .unwrap();
        }
        // Baseline: per-mapper combiner only.
        let off = engine
            .run_job(Arc::new(WordCount { with_combiner: true }), &wc_conf(2))
            .unwrap();
        let counts_off = load_counts(&fs, "/out", 2);
        fs.delete(&HPath::new("/out"), true).unwrap();
        // Same job opted into node-level combining via the conf knob.
        let mut conf = wc_conf(2);
        conf.set_place_level_combine(true);
        let on = engine
            .run_job(Arc::new(WordCount { with_combiner: true }), &conf)
            .unwrap();
        let counts_on = load_counts(&fs, "/out", 2);
        assert_eq!(counts_off, counts_on, "node combine must not change results");
        let seg = |r: &JobResult| r.counters.get(HADOOP_COUNTER_GROUP, "SHUFFLE_SEGMENT_BYTES");
        assert!(
            seg(&on) < seg(&off),
            "wave combine parks fewer segment bytes: {} vs {}",
            seg(&on),
            seg(&off)
        );
        assert!(
            on.counters.task(task_counter::REDUCE_INPUT_RECORDS)
                < off.counters.task(task_counter::REDUCE_INPUT_RECORDS),
            "reducers fetch fewer records with wave combining on"
        );
    }

    #[test]
    fn every_job_pays_startup_and_disk_costs() {
        // The structural claim behind the paper's Figure 6 Hadoop line:
        // repeating an identical job costs the same again — no caching.
        let (mut engine, fs) = setup(2);
        hmr_api::fs::write_file(&fs, &HPath::new("/in/t.txt"), b"x y z x").unwrap();
        let r1 = engine
            .run_job(Arc::new(WordCount { with_combiner: false }), &wc_conf(1))
            .unwrap();
        fs.delete(&HPath::new("/out"), true).unwrap();
        let r2 = engine
            .run_job(Arc::new(WordCount { with_combiner: false }), &wc_conf(1))
            .unwrap();
        assert!(r2.metrics.disk_bytes_read >= r1.metrics.disk_bytes_read);
        assert_eq!(r2.metrics.task_startups, r1.metrics.task_startups);
        assert!(
            (r2.sim_time - r1.sim_time).abs() < 0.35 * r1.sim_time.max(1e-9),
            "iterations cost roughly the same: {} vs {}",
            r1.sim_time,
            r2.sim_time
        );
    }

    /// Identity job over sequence files, used for map-only and sorting tests.
    struct IdJob;

    impl JobDef for IdJob {
        type K1 = LongWritable;
        type V1 = Text;
        type K2 = LongWritable;
        type V2 = Text;
        type K3 = LongWritable;
        type V3 = Text;
        fn create_mapper(
            &self,
            _conf: &JobConf,
        ) -> Box<dyn TaskMapper<LongWritable, Text, LongWritable, Text>> {
            Box::new(IdentityMapper)
        }
        fn create_reducer(
            &self,
            _conf: &JobConf,
        ) -> Box<dyn TaskReducer<LongWritable, Text, LongWritable, Text>> {
            Box::new(IdentityReducer)
        }
        fn input_format(
            &self,
            _conf: &JobConf,
        ) -> Box<dyn InputFormat<LongWritable, Text>> {
            Box::new(SequenceFileInputFormat::new())
        }
        fn output_format(
            &self,
            _conf: &JobConf,
        ) -> Box<dyn OutputFormat<LongWritable, Text>> {
            Box::new(SequenceFileOutputFormat::new())
        }
        fn map_only_convert(
            &self,
        ) -> Option<hmr_api::job::MapOnlyConvert<LongWritable, Text, LongWritable, Text>>
        {
            Some(Arc::new(|k, v| (k, v)))
        }
        fn sort_comparator(&self) -> KeyComparator<LongWritable> {
            KeyComparator::natural()
        }
    }

    #[test]
    fn map_only_job_writes_directly() {
        let (mut engine, fs) = setup(2);
        let records: Vec<(LongWritable, Text)> = (0..10)
            .map(|i| (LongWritable(i), Text::from(format!("v{i}"))))
            .collect();
        write_seq_file(&fs, &HPath::new("/in/part-00000"), &records).unwrap();
        let result = engine.run_job(Arc::new(IdJob), &wc_conf(0)).unwrap();
        assert_eq!(result.output_records, 10);
        // Output file indexed by the map task, not a reducer partition.
        let back: Vec<(LongWritable, Text)> =
            read_seq_file(&fs, &HPath::new("/out/part-00000")).unwrap();
        assert_eq!(back.len(), 10);
        assert_eq!(
            result.counters.task(task_counter::REDUCE_INPUT_RECORDS),
            0,
            "no reduce phase ran"
        );
    }

    #[test]
    fn reduce_output_is_sorted_by_key() {
        let (mut engine, fs) = setup(2);
        let mut records: Vec<(LongWritable, Text)> = (0..50)
            .map(|i| (LongWritable(100 - i), Text::from(format!("v{i}"))))
            .collect();
        records.push((LongWritable(-5), Text::from("first")));
        write_seq_file(&fs, &HPath::new("/in/part-00000"), &records).unwrap();
        engine.run_job(Arc::new(IdJob), &wc_conf(1)).unwrap();
        let back: Vec<(LongWritable, Text)> =
            read_seq_file(&fs, &HPath::new("/out/part-00000")).unwrap();
        assert_eq!(back.len(), 51);
        for w in back.windows(2) {
            assert!(w[0].0 <= w[1].0, "reduce input sort order leaks to output");
        }
        assert_eq!(back[0].1.as_str(), "first");
    }

    #[test]
    fn map_only_without_convert_is_invalid() {
        struct NoConvert;
        impl JobDef for NoConvert {
            type K1 = LongWritable;
            type V1 = Text;
            type K2 = LongWritable;
            type V2 = Text;
            type K3 = LongWritable;
            type V3 = Text;
            fn create_mapper(
                &self,
                _c: &JobConf,
            ) -> Box<dyn TaskMapper<LongWritable, Text, LongWritable, Text>> {
                Box::new(IdentityMapper)
            }
            fn create_reducer(
                &self,
                _c: &JobConf,
            ) -> Box<dyn TaskReducer<LongWritable, Text, LongWritable, Text>> {
                Box::new(IdentityReducer)
            }
            fn input_format(
                &self,
                _c: &JobConf,
            ) -> Box<dyn InputFormat<LongWritable, Text>> {
                Box::new(SequenceFileInputFormat::new())
            }
            fn output_format(
                &self,
                _c: &JobConf,
            ) -> Box<dyn OutputFormat<LongWritable, Text>> {
                Box::new(SequenceFileOutputFormat::new())
            }
        }
        let (mut engine, fs) = setup(1);
        write_seq_file(
            &fs,
            &HPath::new("/in/part-00000"),
            &[(LongWritable(1), Text::from("x"))],
        )
        .unwrap();
        let err = engine.run_job(Arc::new(NoConvert), &wc_conf(0)).unwrap_err();
        assert!(matches!(err, HmrError::InvalidJob(_)));
    }

    #[test]
    fn startup_dominates_tiny_jobs() {
        // The paper's motivation: "small HMR jobs can run essentially
        // instantly on M3R, avoiding the huge (10s of second) start-up cost
        // of the HMR engine." Verify the simulated Hadoop overhead floor.
        let (mut engine, fs) = setup(2);
        hmr_api::fs::write_file(&fs, &HPath::new("/in/tiny.txt"), b"one word").unwrap();
        let r = engine
            .run_job(Arc::new(WordCount { with_combiner: false }), &wc_conf(1))
            .unwrap();
        assert!(
            r.sim_time > 5.0,
            "submission + heartbeats + JVM startups put a floor under job time, got {}",
            r.sim_time
        );
    }
}
