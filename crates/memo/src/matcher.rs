//! The sub-job matcher: decide what, if anything, a submission can reuse.
//!
//! Matching is hierarchical. The best outcome is a **whole-job hit** — the
//! exact job ran before and its outputs are retained, so nothing executes.
//! Failing that, a **map-prefix hit** — some earlier job ran the identical
//! map / combine / partition pipeline over identical inputs (only the
//! reducer differs), and its shuffle-stable reduce-input partitions are
//! retained — lets the engine replay only the reduce side. Otherwise the
//! job is a **miss** and runs normally (recording on the way out).

use hmr_api::fs::FileSystem;

use crate::fingerprint::FingerprintBasis;
use crate::index::ReuseIndex;

/// What the matcher found for a submission.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MemoMatch {
    /// Retained whole-job output exists: replay it, run nothing.
    Full,
    /// Retained reduce-input partitions for the identical map-phase prefix
    /// exist: skip map+shuffle, run only the reduce side.
    MapPrefix,
    /// Nothing reusable: run the job and record its results.
    Miss,
}

/// Classify `basis` against `index`, verifying entries against `fs` (stale
/// entries are invalidated as a side effect, exactly as on lookup).
///
/// This inspects validity without consuming a hit: it does not bump hit
/// counters or LRU ticks, so engines can probe it for scheduling decisions
/// and still do the real `lookup_full` / `lookup_map` when they commit.
pub fn match_job(index: &ReuseIndex, basis: &FingerprintBasis, fs: &dyn FileSystem) -> MemoMatch {
    if index.probe_full(basis.job_fingerprint(), fs) {
        MemoMatch::Full
    } else if index.probe_map(basis.map_fingerprint(), fs) {
        MemoMatch::MapPrefix
    } else {
        MemoMatch::Miss
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hmr_api::conf::JobConf;
    use hmr_api::counters::Counters;
    use hmr_api::fs::{write_file, HPath, MemFs};
    use hmr_api::job::ComputeIdentity;
    use std::sync::Arc;

    #[test]
    fn match_hierarchy_full_then_map_then_miss() {
        let fs = MemFs::new();
        write_file(&fs, &HPath::new("/in/a"), b"x").unwrap();
        let mut conf = JobConf::new();
        conf.set_input_paths(&[HPath::new("/in/a")])
            .set_num_reduce_tasks(2);
        let sum = FingerprintBasis::gather(
            &fs,
            &conf,
            &ComputeIdentity::new("wc.map", "sum"),
            "m3r",
            &[],
        )
        .unwrap();
        let max = FingerprintBasis::gather(
            &fs,
            &conf,
            &ComputeIdentity::new("wc.map", "max"),
            "m3r",
            &[],
        )
        .unwrap();

        let idx = ReuseIndex::new(2);
        assert_eq!(match_job(&idx, &sum, &fs), MemoMatch::Miss);

        // Record the *sum* job fully, plus its map-phase partitions.
        idx.record_full(
            sum.job_fingerprint(),
            sum.input_versions().to_vec(),
            vec![("part-00000".into(), bytes::Bytes::copy_from_slice(b"s"))],
            Counters::new(),
            1,
        );
        idx.record_map(
            sum.map_fingerprint(),
            sum.input_versions().to_vec(),
            Arc::new(42usize),
            Counters::new(),
            8,
        );

        // Identical resubmission: whole-job hit.
        assert_eq!(match_job(&idx, &sum, &fs), MemoMatch::Full);
        // Same map phase, different reducer: map-prefix hit.
        assert_eq!(match_job(&idx, &max, &fs), MemoMatch::MapPrefix);
        // Probing consumed nothing.
        assert_eq!(idx.hits(), 0);

        // Input mutation degrades both to a miss (and invalidates).
        fs.delete(&HPath::new("/in/a"), false).unwrap();
        write_file(&fs, &HPath::new("/in/a"), b"y").unwrap();
        assert_eq!(match_job(&idx, &sum, &fs), MemoMatch::Miss);
        assert!(idx.invalidations() >= 1);
    }
}
