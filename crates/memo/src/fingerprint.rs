//! Canonical job fingerprints.
//!
//! A fingerprint is the identity ReStore-style memoization keys on: two
//! submissions share a fingerprint exactly when the subsystem can prove they
//! would produce the same output bytes. The basis folds together
//!
//! * every input and cache-file path with its filesystem *content version*
//!   (a content hash — see `FileSystem::content_version`), so any byte
//!   change to any input, or any add/remove/rename under an input
//!   directory, changes the fingerprint;
//! * the job's declared [`ComputeIdentity`] (mapper / reducer / combiner /
//!   partitioner), so only jobs running the same code can collide;
//! * the *semantic* subset of the effective `JobConf`, normalized: keys are
//!   iterated in sorted (BTreeMap) order and keys that cannot change output
//!   bytes — job name, client id, sort/shuffle tuning knobs, the memo
//!   enable flag itself, and the path-carrying keys hashed separately —
//!   are excluded;
//! * the engine name and any engine options that affect output bytes.
//!
//! Everything is hashed with the same fnv1a kernel the comparators use.

use hmr_api::comparator::fnv1a;
use hmr_api::conf::{self, JobConf};
use hmr_api::fs::{FileSystem, HPath};
use hmr_api::job::ComputeIdentity;

/// An opaque 64-bit job fingerprint.
///
/// The field is private on purpose: fingerprints may only be *derived* (via
/// [`FingerprintBasis`]) inside this crate, never constructed ad hoc by a
/// caller — a CI grep gate enforces that no `Fingerprint(` constructor
/// appears outside `crates/memo`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Fingerprint(u64);

impl Fingerprint {
    /// The raw hash value (for sharding and display; cannot be turned back
    /// into a `Fingerprint` outside this crate).
    pub fn value(self) -> u64 {
        self.0
    }
}

impl std::fmt::Display for Fingerprint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

/// Conf keys excluded from the fingerprint because their value cannot change
/// the job's output bytes (or because they are hashed through a dedicated
/// channel instead of as raw conf text).
///
/// * Labels and routing: job name, client id.
/// * The memo flag itself — enabling memoization must not change the
///   fingerprint of the job being memoized.
/// * Sort/shuffle/grouping tuning knobs: they pick among implementations
///   that are pinned byte-identical by the tier-1 tests.
/// * Path-carrying keys: inputs and cache files enter as `(path, content
///   version)` pairs; the output path is where results *land*, not what
///   they *are* — a hit may replay into a different output directory.
/// * Engine selection: the engine name enters the basis explicitly.
pub const NON_SEMANTIC_KEYS: &[&str] = &[
    conf::JOB_NAME,
    conf::CLIENT_ID,
    conf::MEMO_ENABLE,
    conf::RAW_SORT_MIN_PAIRS,
    conf::RADIX_SORT_MIN_PAIRS,
    conf::HASH_GROUP_INGEST,
    conf::PLACE_COMBINE,
    conf::INPUT_PATHS,
    conf::CACHE_FILES,
    conf::OUTPUT_PATH,
    conf::TEMP_PREFIX,
    conf::TEMP_PATHS,
    conf::USE_HADOOP,
];

/// The gathered, normalized material a fingerprint is derived from.
///
/// Gathering and hashing are split so the engine can reuse the same basis
/// for the whole-job fingerprint, the map-phase prefix fingerprint, and the
/// input-version snapshot stored alongside the memo entry for later
/// invalidation checks.
#[derive(Clone, Debug)]
pub struct FingerprintBasis {
    engine: String,
    identity: ComputeIdentity,
    inputs: Vec<(HPath, u64)>,
    conf_semantic: Vec<(String, String)>,
    engine_knobs: Vec<(String, String)>,
}

impl FingerprintBasis {
    /// Gather the basis for `conf` against `fs`.
    ///
    /// Returns `None` when any input or cache file lacks a content version
    /// (missing path, or an unversioned filesystem): without proof of input
    /// content the memo subsystem must neither record nor replay.
    ///
    /// `engine_knobs` are the engine options that affect output bytes,
    /// pre-rendered by the engine (e.g. nothing today: both engines pin
    /// byte-identical output across all their knobs, so they pass `&[]` —
    /// the parameter exists so any future bytes-affecting option has an
    /// obvious place to go).
    pub fn gather(
        fs: &dyn FileSystem,
        conf: &JobConf,
        identity: &ComputeIdentity,
        engine: &str,
        engine_knobs: &[(String, String)],
    ) -> Option<FingerprintBasis> {
        let mut inputs = Vec::new();
        for path in conf.input_paths().into_iter().chain(conf.cache_files()) {
            let v = fs.content_version(&path)?;
            inputs.push((path, v));
        }
        let conf_semantic = conf
            .iter()
            .filter(|(k, _)| !NON_SEMANTIC_KEYS.contains(k))
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect();
        Some(FingerprintBasis {
            engine: engine.to_string(),
            identity: identity.clone(),
            inputs,
            conf_semantic,
            engine_knobs: engine_knobs.to_vec(),
        })
    }

    /// The `(path, content version)` snapshot to persist with a memo entry;
    /// `ReuseIndex` re-checks it on every lookup so a stale entry is
    /// invalidated the moment any input's version changes.
    pub fn input_versions(&self) -> &[(HPath, u64)] {
        &self.inputs
    }

    /// The whole-job fingerprint: everything, including the reducer.
    pub fn job_fingerprint(&self) -> Fingerprint {
        Fingerprint(self.digest(true))
    }

    /// The map-phase prefix fingerprint: the whole-job basis *minus the
    /// reducer identity*. Two jobs sharing this ran the identical map /
    /// combine / partition pipeline over identical inputs, so their
    /// shuffle-stable reduce-input partitions are interchangeable even when
    /// their reducers differ — the sub-job matcher keys retained partitions
    /// on this.
    pub fn map_fingerprint(&self) -> Fingerprint {
        Fingerprint(self.digest(false))
    }

    fn digest(&self, with_reducer: bool) -> u64 {
        // One flat, domain-tagged byte stream through fnv1a. Tags (and NUL
        // separators after variable-length strings) keep fields from
        // bleeding into each other.
        let mut buf = Vec::with_capacity(256);
        let field = |buf: &mut Vec<u8>, tag: u8, s: &str| {
            buf.push(tag);
            buf.extend_from_slice(s.as_bytes());
            buf.push(0);
        };
        field(&mut buf, b'e', &self.engine);
        field(&mut buf, b'm', &self.identity.mapper);
        if with_reducer {
            field(&mut buf, b'r', &self.identity.reducer);
        }
        match &self.identity.combiner {
            Some(c) => field(&mut buf, b'c', c),
            None => buf.push(b'-'),
        }
        field(&mut buf, b'p', &self.identity.partitioner);
        for (path, version) in &self.inputs {
            field(&mut buf, b'i', path.as_str());
            buf.extend_from_slice(&version.to_le_bytes());
        }
        for (k, v) in &self.conf_semantic {
            field(&mut buf, b'k', k);
            field(&mut buf, b'v', v);
        }
        for (k, v) in &self.engine_knobs {
            field(&mut buf, b'K', k);
            field(&mut buf, b'V', v);
        }
        fnv1a(&buf)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hmr_api::fs::{write_file, MemFs};

    fn basis_on(fs: &MemFs, conf: &JobConf, id: &ComputeIdentity) -> FingerprintBasis {
        FingerprintBasis::gather(fs, conf, id, "m3r", &[]).expect("versioned inputs")
    }

    fn setup() -> (MemFs, JobConf, ComputeIdentity) {
        let fs = MemFs::new();
        write_file(&fs, &HPath::new("/in/a"), b"alpha").unwrap();
        let mut conf = JobConf::new();
        conf.set_input_paths(&[HPath::new("/in/a")])
            .set_output_path(&HPath::new("/out"))
            .set_num_reduce_tasks(4);
        let id = ComputeIdentity::new("wc.map", "wc.reduce");
        (fs, conf, id)
    }

    #[test]
    fn non_semantic_keys_do_not_change_fingerprint() {
        let (fs, mut conf, id) = setup();
        let fp0 = basis_on(&fs, &conf, &id).job_fingerprint();
        conf.set(conf::JOB_NAME, "renamed")
            .set_client_id("tenant-b")
            .set_memo_enable(true)
            .set_raw_sort_min_pairs(7)
            .set_place_level_combine(true)
            .set_output_path(&HPath::new("/elsewhere"));
        assert_eq!(basis_on(&fs, &conf, &id).job_fingerprint(), fp0);
    }

    #[test]
    fn semantic_conf_keys_do_change_fingerprint() {
        let (fs, mut conf, id) = setup();
        let fp0 = basis_on(&fs, &conf, &id).job_fingerprint();
        conf.set_num_reduce_tasks(8);
        assert_ne!(basis_on(&fs, &conf, &id).job_fingerprint(), fp0);
        conf.set_num_reduce_tasks(4);
        conf.set("user.custom.threshold", "0.5");
        assert_ne!(basis_on(&fs, &conf, &id).job_fingerprint(), fp0);
    }

    #[test]
    fn distinct_mapper_distinct_fingerprint() {
        let (fs, conf, id) = setup();
        let fp0 = basis_on(&fs, &conf, &id).job_fingerprint();
        let other = ComputeIdentity::new("grep.map", "wc.reduce");
        assert_ne!(basis_on(&fs, &conf, &other).job_fingerprint(), fp0);
        // Engine name is part of the basis too.
        let b = FingerprintBasis::gather(&fs, &conf, &id, "hadoop", &[]).unwrap();
        assert_ne!(b.job_fingerprint(), fp0);
    }

    #[test]
    fn map_fingerprint_ignores_reducer_only() {
        let (fs, conf, id) = setup();
        let sum = basis_on(&fs, &conf, &id);
        let max = basis_on(
            &fs,
            &conf,
            &ComputeIdentity::new("wc.map", "wc.reduce.max"),
        );
        assert_ne!(sum.job_fingerprint(), max.job_fingerprint());
        assert_eq!(sum.map_fingerprint(), max.map_fingerprint());
        // …but not the combiner: a combiner changes map *output*.
        let comb = basis_on(
            &fs,
            &conf,
            &ComputeIdentity::new("wc.map", "wc.reduce.max").with_combiner("wc.comb"),
        );
        assert_ne!(comb.map_fingerprint(), max.map_fingerprint());
    }

    #[test]
    fn input_bytes_and_paths_feed_the_fingerprint() {
        let (fs, conf, id) = setup();
        let fp0 = basis_on(&fs, &conf, &id).job_fingerprint();
        // Same bytes, different path.
        write_file(&fs, &HPath::new("/in/b"), b"alpha").unwrap();
        let mut conf2 = conf.clone();
        conf2.set_input_paths(&[HPath::new("/in/b")]);
        assert_ne!(basis_on(&fs, &conf2, &id).job_fingerprint(), fp0);
        // Same path, different bytes.
        fs.delete(&HPath::new("/in/a"), false).unwrap();
        write_file(&fs, &HPath::new("/in/a"), b"beta").unwrap();
        assert_ne!(basis_on(&fs, &conf, &id).job_fingerprint(), fp0);
        // Identical rewrite restores it.
        fs.delete(&HPath::new("/in/a"), false).unwrap();
        write_file(&fs, &HPath::new("/in/a"), b"alpha").unwrap();
        assert_eq!(basis_on(&fs, &conf, &id).job_fingerprint(), fp0);
    }

    #[test]
    fn unversioned_input_declines() {
        let (fs, mut conf, id) = setup();
        conf.set_input_paths(&[HPath::new("/in/a"), HPath::new("/missing")]);
        assert!(FingerprintBasis::gather(&fs, &conf, &id, "m3r", &[]).is_none());
    }
}
