#![warn(missing_docs)]

//! # m3r-memo — ReStore-style cross-job result memoization
//!
//! MapReduce workloads resubmit work constantly: dashboards re-run the same
//! aggregation over unchanged inputs, iterative drivers re-launch
//! structurally identical jobs, and exploratory queries share long map
//! pipelines and differ only in the final reduction. ReStore (Elghandour &
//! Aboulnaga, VLDB 2012) showed that retaining and reusing prior job
//! outputs turns these into (near-)free operations. M3R's long-lived
//! in-memory places make the idea cheap to host: retained results are just
//! more governed heap, alongside the §3.2 kv cache.
//!
//! Three pieces, one per module:
//!
//! * [`fingerprint`] — the canonical job fingerprint: inputs (path +
//!   content version), declared compute identity, normalized semantic
//!   conf, engine name. Hashed with the workspace's fnv1a kernel. The
//!   [`Fingerprint`] type is deliberately unconstructible outside this
//!   crate.
//! * [`index`] — the per-server [`ReuseIndex`]: fingerprint → retained
//!   whole-job outputs and map-phase partition sets, owner-tagged
//!   `MemClass::Memo`, invalidated when any input's DFS version changes,
//!   dropped (never spilled) LRU-first under budget pressure.
//! * [`matcher`] — the sub-job matcher classifying a submission as a
//!   whole-job hit, a map-prefix hit (identical map pipeline, different
//!   reducer ⇒ replay reduce only), or a miss.
//!
//! The engines own the wiring: they gather a [`FingerprintBasis`] per
//! eligible job, consult the index before running, and record on the way
//! out. The §5.3 job server additionally calls `LaneEngine::try_memo_replay`
//! pre-admission so whole-job hits resolve tickets without occupying a
//! dispatch lane. Everything is off by default (`M3ROptions.memoize` /
//! `m3r.memo.enable`) and bit-identical to the non-memoized engine when
//! off.

pub mod fingerprint;
pub mod index;
pub mod matcher;

pub use fingerprint::{Fingerprint, FingerprintBasis, NON_SEMANTIC_KEYS};
pub use index::{FullHit, ReuseIndex};
pub use matcher::{match_job, MemoMatch};

#[cfg(test)]
mod prop {
    use super::*;
    use hmr_api::conf::JobConf;
    use hmr_api::counters::Counters;
    use hmr_api::fs::{write_file, FileSystem, HPath, MemFs};
    use hmr_api::job::ComputeIdentity;
    use proptest::prelude::*;

    /// Build the same seeded job twice, entirely independently.
    fn seeded_basis(seed: u64, files: &[(String, Vec<u8>)]) -> (MemFs, JobConf, FingerprintBasis) {
        let fs = MemFs::new();
        let mut paths = Vec::new();
        for (name, data) in files {
            let p = HPath::new(format!("/in/{name}"));
            write_file(&fs, &p, data).unwrap();
            paths.push(p);
        }
        let mut conf = JobConf::new();
        conf.set_input_paths(&paths)
            .set_output_path(&HPath::new("/out"))
            .set_num_reduce_tasks((seed % 7 + 1) as usize)
            .set(format!("user.seed.{}", seed % 3), seed.to_string());
        let id = ComputeIdentity::new(format!("map-{}", seed % 5), format!("red-{}", seed % 4));
        let basis = FingerprintBasis::gather(&fs, &conf, &id, "m3r", &[]).unwrap();
        (fs, conf, basis)
    }

    proptest! {
        #[test]
        fn same_seeded_job_agrees_on_fingerprint(
            seed in any::<u64>(),
            data in proptest::collection::vec(any::<u8>(), 0..64),
        ) {
            let files = vec![("a".to_string(), data)];
            let (_fs1, _c1, b1) = seeded_basis(seed, &files);
            let (_fs2, _c2, b2) = seeded_basis(seed, &files);
            prop_assert_eq!(b1.job_fingerprint(), b2.job_fingerprint());
            prop_assert_eq!(b1.map_fingerprint(), b2.map_fingerprint());
        }

        #[test]
        fn mutating_any_input_invalidates_the_entry(
            seed in any::<u64>(),
            which in 0usize..3,
            flip in any::<u8>(),
        ) {
            let files: Vec<(String, Vec<u8>)> = (0..3)
                .map(|i| (format!("f{i}"), vec![i as u8; 8]))
                .collect();
            let (fs, _conf, basis) = seeded_basis(seed, &files);
            let idx = ReuseIndex::new(4);
            idx.record_full(
                basis.job_fingerprint(),
                basis.input_versions().to_vec(),
                vec![("part-00000".to_string(), bytes::Bytes::copy_from_slice(b"o"))],
                Counters::new(),
                1,
            );
            prop_assert!(idx.lookup_full(basis.job_fingerprint(), &fs).is_some());

            // Mutate one input file's bytes (guaranteed different content).
            let victim = HPath::new(format!("/in/f{which}"));
            let mut data = vec![which as u8; 8];
            data[0] ^= flip | 1;
            fs.delete(&victim, false).unwrap();
            write_file(&fs, &victim, &data).unwrap();

            prop_assert!(idx.lookup_full(basis.job_fingerprint(), &fs).is_none());
            prop_assert_eq!(idx.invalidations(), 1);
            // And the fingerprint itself moved, so a re-run records afresh.
            let id = ComputeIdentity::new(
                format!("map-{}", seed % 5),
                format!("red-{}", seed % 4),
            );
            let again = FingerprintBasis::gather(&fs, &_conf, &id, "m3r", &[]).unwrap();
            prop_assert_ne!(again.job_fingerprint(), basis.job_fingerprint());
        }
    }

    #[test]
    fn simdfs_backed_fingerprints_work_too() {
        // The same flow over the simulated HDFS (content versions stamped
        // at writer close) — the memo subsystem is filesystem-agnostic.
        let cluster = simgrid::Cluster::free(4);
        let dfs = simdfs::SimDfs::new(cluster);
        write_file(&dfs, &HPath::new("/in/a"), b"hdfs bytes").unwrap();
        let mut conf = JobConf::new();
        conf.set_input_paths(&[HPath::new("/in/a")])
            .set_num_reduce_tasks(2);
        let id = ComputeIdentity::new("m", "r");
        let b1 = FingerprintBasis::gather(&dfs, &conf, &id, "m3r", &[]).unwrap();
        dfs.delete(&HPath::new("/in/a"), false).unwrap();
        write_file(&dfs, &HPath::new("/in/a"), b"hdfs bytes").unwrap();
        let b2 = FingerprintBasis::gather(&dfs, &conf, &id, "m3r", &[]).unwrap();
        assert_eq!(b1.job_fingerprint(), b2.job_fingerprint());
    }
}
