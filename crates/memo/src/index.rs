//! The per-server reuse index: fingerprint → retained results.
//!
//! Two kinds of entries live here, sharded across places by fingerprint:
//!
//! * **Full entries** — the complete retained output partition set of a
//!   finished job (raw `part-*` bytes, engine-agnostic), plus its counters
//!   and output-record count. A hit replays these bytes verbatim.
//! * **Map entries** — the shuffle-stable reduce-input partitions of a
//!   finished map phase, stored as an opaque `Arc<dyn Any>` (they are typed
//!   by the job's `K2/V2` domain, which only the engine knows). A hit lets
//!   the engine skip map+shuffle and run only the reduce side.
//!
//! Every entry carries the `(path, content version)` snapshot of the inputs
//! it was derived from; lookups re-check the snapshot against the live
//! filesystem and **invalidate** the entry the moment any version changed.
//!
//! Memory is accounted against [`MemClass::Memo`] through the engine's
//! `MemAccountant`, so memo bytes are budget-live under the PR 5 governor.
//! Over budget, entries are **dropped LRU-first, never spilled**: a spilled
//! entry would have to charge `DiskRead` on reload, destroying the "~0
//! simulated seconds" replay guarantee — recomputing the job *is* the
//! reload path, and it is always correct.

use std::any::Any;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use bytes::Bytes;
use parking_lot::Mutex;

use hmr_api::counters::Counters;
use hmr_api::fs::{FileSystem, HPath};
use simgrid::mem::{MemAccountant, MemClass};
use simgrid::telemetry::TelemetryRegistry;

use crate::fingerprint::Fingerprint;

/// A retained whole-job result, returned by value on a hit (`Bytes` clones
/// are refcount bumps, not copies).
#[derive(Clone, Debug)]
pub struct FullHit {
    /// Output partition files as `(file name, raw bytes)`, e.g.
    /// `("part-00000", …)`, in name order.
    pub parts: Vec<(String, Bytes)>,
    /// The counters the original run reported.
    pub counters: Counters,
    /// Records the original run's output stage wrote.
    pub output_records: u64,
}

struct FullEntry {
    inputs: Vec<(HPath, u64)>,
    hit: FullHit,
    bytes: u64,
    tick: u64,
}

struct MapEntry {
    inputs: Vec<(HPath, u64)>,
    data: Arc<dyn Any + Send + Sync>,
    counters: Counters,
    bytes: u64,
    tick: u64,
}

#[derive(Default)]
struct Shard {
    full: HashMap<u64, FullEntry>,
    map: HashMap<u64, MapEntry>,
}

/// The reuse index. One per engine; shared behind `Arc` with the server.
pub struct ReuseIndex {
    shards: Vec<Mutex<Shard>>,
    mem: Option<MemAccountant>,
    clock: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    invalidations: AtomicU64,
    evictions: AtomicU64,
    bytes: AtomicU64,
}

impl ReuseIndex {
    /// An index sharded over `places` (≥ 1), without memory accounting.
    pub fn new(places: usize) -> Self {
        ReuseIndex::build(places, None)
    }

    /// An index whose retained bytes are charged to [`MemClass::Memo`] on
    /// `mem`, and dropped LRU-first whenever the owning place exceeds the
    /// accountant's budget.
    pub fn governed(places: usize, mem: MemAccountant) -> Self {
        ReuseIndex::build(places, Some(mem))
    }

    fn build(places: usize, mem: Option<MemAccountant>) -> Self {
        let places = places.max(1);
        ReuseIndex {
            shards: (0..places).map(|_| Mutex::new(Shard::default())).collect(),
            mem,
            clock: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            invalidations: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            bytes: AtomicU64::new(0),
        }
    }

    /// The place a fingerprint's entries live on.
    pub fn place_of(&self, fp: Fingerprint) -> usize {
        (fp.value() % self.shards.len() as u64) as usize
    }

    fn tick(&self) -> u64 {
        self.clock.fetch_add(1, Ordering::Relaxed)
    }

    fn grow(&self, place: usize, bytes: u64) {
        self.bytes.fetch_add(bytes, Ordering::Relaxed);
        if let Some(mem) = &self.mem {
            mem.grow(place, MemClass::Memo, bytes);
        }
    }

    fn shrink(&self, place: usize, bytes: u64) {
        self.bytes.fetch_sub(bytes, Ordering::Relaxed);
        if let Some(mem) = &self.mem {
            mem.shrink(place, MemClass::Memo, bytes);
        }
    }

    /// True when `inputs` still matches the live filesystem.
    fn still_valid(fs: &dyn FileSystem, inputs: &[(HPath, u64)]) -> bool {
        inputs
            .iter()
            .all(|(p, v)| fs.content_version(p) == Some(*v))
    }

    /// Record a finished job's retained output under `fp`.
    pub fn record_full(
        &self,
        fp: Fingerprint,
        inputs: Vec<(HPath, u64)>,
        parts: Vec<(String, Bytes)>,
        counters: Counters,
        output_records: u64,
    ) {
        let place = self.place_of(fp);
        let bytes: u64 = parts
            .iter()
            .map(|(n, b)| n.len() as u64 + b.len() as u64)
            .sum();
        let entry = FullEntry {
            inputs,
            hit: FullHit {
                parts,
                counters,
                output_records,
            },
            bytes,
            tick: self.tick(),
        };
        let evicted = {
            let mut shard = self.shards[place].lock();
            if let Some(old) = shard.full.insert(fp.value(), entry) {
                self.shrink(place, old.bytes);
            }
            self.grow(place, bytes);
            self.enforce_budget(place, &mut shard)
        };
        self.note_evicted(place, evicted);
    }

    /// Record a finished map phase's reduce-input partitions under the
    /// map-prefix fingerprint `fp`. `data` is the engine's typed partition
    /// set; `bytes` its accountable size; `counters` the map-side counters
    /// the replayed job must still report.
    pub fn record_map(
        &self,
        fp: Fingerprint,
        inputs: Vec<(HPath, u64)>,
        data: Arc<dyn Any + Send + Sync>,
        counters: Counters,
        bytes: u64,
    ) {
        let place = self.place_of(fp);
        let entry = MapEntry {
            inputs,
            data,
            counters,
            bytes,
            tick: self.tick(),
        };
        let evicted = {
            let mut shard = self.shards[place].lock();
            if let Some(old) = shard.map.insert(fp.value(), entry) {
                self.shrink(place, old.bytes);
            }
            self.grow(place, bytes);
            self.enforce_budget(place, &mut shard)
        };
        self.note_evicted(place, evicted);
    }

    /// Look up a whole-job entry. Verifies the recorded input versions
    /// against `fs`: a stale entry is removed (counted as an invalidation)
    /// and the lookup misses. Counts a hit and refreshes LRU on success.
    /// Does **not** count a miss — the engine decides when the overall
    /// attempt (full, then map-prefix) has missed; see [`Self::note_miss`].
    pub fn lookup_full(&self, fp: Fingerprint, fs: &dyn FileSystem) -> Option<FullHit> {
        let place = self.place_of(fp);
        let mut shard = self.shards[place].lock();
        let entry = shard.full.get_mut(&fp.value())?;
        if !Self::still_valid(fs, &entry.inputs) {
            let dead = shard.full.remove(&fp.value()).expect("present above");
            drop(shard);
            self.shrink(place, dead.bytes);
            self.invalidations.fetch_add(1, Ordering::Relaxed);
            return None;
        }
        entry.tick = self.tick();
        let hit = entry.hit.clone();
        drop(shard);
        self.hits.fetch_add(1, Ordering::Relaxed);
        Some(hit)
    }

    /// Look up a map-phase entry and downcast its partition set to the
    /// engine's concrete type. Verification, invalidation, hit counting and
    /// LRU refresh behave exactly as [`Self::lookup_full`]. A `T` mismatch
    /// (same fingerprint, different engine-side representation — cannot
    /// happen while the engine name is in the fingerprint) is treated as
    /// absent rather than a panic.
    pub fn lookup_map<T: Send + Sync + 'static>(
        &self,
        fp: Fingerprint,
        fs: &dyn FileSystem,
    ) -> Option<(Arc<T>, Counters)> {
        let place = self.place_of(fp);
        let mut shard = self.shards[place].lock();
        let entry = shard.map.get_mut(&fp.value())?;
        if !Self::still_valid(fs, &entry.inputs) {
            let dead = shard.map.remove(&fp.value()).expect("present above");
            drop(shard);
            self.shrink(place, dead.bytes);
            self.invalidations.fetch_add(1, Ordering::Relaxed);
            return None;
        }
        let data = Arc::clone(&entry.data).downcast::<T>().ok()?;
        entry.tick = self.tick();
        let counters = entry.counters.clone();
        drop(shard);
        self.hits.fetch_add(1, Ordering::Relaxed);
        Some((data, counters))
    }

    /// True when a still-valid whole-job entry exists for `fp`. Stale
    /// entries are invalidated (as on lookup) but nothing is consumed: no
    /// hit count, no LRU refresh.
    pub fn probe_full(&self, fp: Fingerprint, fs: &dyn FileSystem) -> bool {
        let place = self.place_of(fp);
        let mut shard = self.shards[place].lock();
        let Some(entry) = shard.full.get(&fp.value()) else {
            return false;
        };
        if Self::still_valid(fs, &entry.inputs) {
            return true;
        }
        let dead = shard.full.remove(&fp.value()).expect("present above");
        drop(shard);
        self.shrink(place, dead.bytes);
        self.invalidations.fetch_add(1, Ordering::Relaxed);
        false
    }

    /// [`Self::probe_full`] for map-phase entries.
    pub fn probe_map(&self, fp: Fingerprint, fs: &dyn FileSystem) -> bool {
        let place = self.place_of(fp);
        let mut shard = self.shards[place].lock();
        let Some(entry) = shard.map.get(&fp.value()) else {
            return false;
        };
        if Self::still_valid(fs, &entry.inputs) {
            return true;
        }
        let dead = shard.map.remove(&fp.value()).expect("present above");
        drop(shard);
        self.shrink(place, dead.bytes);
        self.invalidations.fetch_add(1, Ordering::Relaxed);
        false
    }

    /// Count one memo miss. Called once per eligible job whose full *and*
    /// map-prefix lookups both came up empty, so hit + miss counts equal
    /// the number of eligible submissions (deterministic for the bench
    /// invariants).
    pub fn note_miss(&self) {
        self.misses.fetch_add(1, Ordering::Relaxed);
    }

    /// Drop LRU entries on `place` until it fits the accountant's budget
    /// again (or no memo entries remain there). Returns the dropped bytes.
    fn enforce_budget(&self, place: usize, shard: &mut Shard) -> u64 {
        let Some(mem) = &self.mem else { return 0 };
        let Some(budget) = mem.budget() else { return 0 };
        let mut dropped = 0u64;
        while mem.live(place) > budget {
            let oldest_full = shard.full.iter().min_by_key(|(_, e)| e.tick);
            let oldest_map = shard.map.iter().min_by_key(|(_, e)| e.tick);
            let victim = match (oldest_full, oldest_map) {
                (Some((fk, fe)), Some((mk, me))) => {
                    if fe.tick <= me.tick {
                        Ok(*fk)
                    } else {
                        Err(*mk)
                    }
                }
                (Some((fk, _)), None) => Ok(*fk),
                (None, Some((mk, _))) => Err(*mk),
                (None, None) => break,
            };
            let bytes = match victim {
                Ok(k) => shard.full.remove(&k).expect("chosen above").bytes,
                Err(k) => shard.map.remove(&k).expect("chosen above").bytes,
            };
            self.shrink(place, bytes);
            dropped += bytes;
        }
        dropped
    }

    fn note_evicted(&self, place: usize, dropped: u64) {
        if dropped > 0 {
            self.evictions.fetch_add(1, Ordering::Relaxed);
            if let Some(mem) = &self.mem {
                // Dropped, not spilled: zero spill bytes.
                mem.note_eviction(place, 0);
            }
        }
    }

    /// Whole-job + map-prefix hits served.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Eligible submissions that found nothing reusable.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Entries removed because an input's content version changed.
    pub fn invalidations(&self) -> u64 {
        self.invalidations.load(Ordering::Relaxed)
    }

    /// Budget-pressure eviction rounds (entries dropped, never spilled).
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }

    /// Retained bytes currently live across all places.
    pub fn bytes_live(&self) -> u64 {
        self.bytes.load(Ordering::Relaxed)
    }

    /// Retained entry count `(full, map)` — for tests and reports.
    pub fn entry_counts(&self) -> (usize, usize) {
        let mut full = 0;
        let mut map = 0;
        for s in &self.shards {
            let s = s.lock();
            full += s.full.len();
            map += s.map.len();
        }
        (full, map)
    }

    /// Register the subsystem's telemetry:
    /// `m3r_memo_{hits,misses,invalidations,bytes}_total`.
    pub fn publish_telemetry(self: &Arc<Self>, registry: &TelemetryRegistry) {
        let scalar = |v: u64| vec![(String::new(), v as f64)];
        let me = Arc::clone(self);
        registry.gauge(
            "m3r_memo_hits_total",
            "Cross-job memo hits (whole-job + map-prefix) served",
            Arc::new(move || scalar(me.hits())),
        );
        let me = Arc::clone(self);
        registry.gauge(
            "m3r_memo_misses_total",
            "Eligible submissions with no reusable memo entry",
            Arc::new(move || scalar(me.misses())),
        );
        let me = Arc::clone(self);
        registry.gauge(
            "m3r_memo_invalidations_total",
            "Memo entries dropped because an input's content version changed",
            Arc::new(move || scalar(me.invalidations())),
        );
        let me = Arc::clone(self);
        registry.gauge(
            "m3r_memo_bytes_total",
            "Bytes retained in the cross-job memo index",
            Arc::new(move || scalar(me.bytes_live())),
        );
    }

    /// A human-readable accountant-style section for `--bin report`.
    pub fn report_section(&self) -> String {
        let (full, map) = self.entry_counts();
        let hits = self.hits();
        let misses = self.misses();
        let rate = if hits + misses > 0 {
            100.0 * hits as f64 / (hits + misses) as f64
        } else {
            0.0
        };
        let mut s = String::new();
        s.push_str("cross-job memoization (m3r-memo)\n");
        s.push_str(&format!(
            "  entries: {full} full, {map} map-prefix  ({} bytes retained)\n",
            self.bytes_live()
        ));
        s.push_str(&format!(
            "  hits: {hits}  misses: {misses}  hit rate: {rate:.1}%\n",
        ));
        s.push_str(&format!(
            "  invalidations: {}  evictions: {}\n",
            self.invalidations(),
            self.evictions()
        ));
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fingerprint::FingerprintBasis;
    use hmr_api::conf::JobConf;
    use hmr_api::fs::{write_file, MemFs};
    use hmr_api::job::ComputeIdentity;

    fn fp_for(fs: &MemFs, input: &str, mapper: &str) -> (Fingerprint, Vec<(HPath, u64)>) {
        let mut conf = JobConf::new();
        conf.set_input_paths(&[HPath::new(input)])
            .set_num_reduce_tasks(2);
        let id = ComputeIdentity::new(mapper, "r");
        let basis = FingerprintBasis::gather(fs, &conf, &id, "m3r", &[]).unwrap();
        (basis.job_fingerprint(), basis.input_versions().to_vec())
    }

    fn part(bytes: &[u8]) -> Vec<(String, Bytes)> {
        vec![("part-00000".to_string(), Bytes::from(bytes.to_vec()))]
    }

    #[test]
    fn record_hit_invalidate_cycle() {
        let fs = MemFs::new();
        write_file(&fs, &HPath::new("/in/a"), b"v1").unwrap();
        let idx = ReuseIndex::new(4);
        let (fp, inputs) = fp_for(&fs, "/in/a", "m");
        assert!(idx.lookup_full(fp, &fs).is_none());
        idx.record_full(fp, inputs, part(b"out"), Counters::new(), 1);
        let hit = idx.lookup_full(fp, &fs).expect("hit");
        assert_eq!(&hit.parts[0].1[..], b"out");
        assert_eq!(idx.hits(), 1);
        // Mutate the input: the entry invalidates on next lookup.
        fs.delete(&HPath::new("/in/a"), false).unwrap();
        write_file(&fs, &HPath::new("/in/a"), b"v2").unwrap();
        assert!(idx.lookup_full(fp, &fs).is_none());
        assert_eq!(idx.invalidations(), 1);
        assert_eq!(idx.entry_counts(), (0, 0));
        assert_eq!(idx.bytes_live(), 0);
    }

    #[test]
    fn governed_index_drops_lru_under_budget() {
        let fs = MemFs::new();
        write_file(&fs, &HPath::new("/in/a"), b"v1").unwrap();
        let mem = MemAccountant::new(1);
        mem.set_budget(Some(64));
        let idx = ReuseIndex::governed(1, mem.clone());
        let (fp1, inputs1) = fp_for(&fs, "/in/a", "m1");
        let (fp2, inputs2) = fp_for(&fs, "/in/a", "m2");
        idx.record_full(fp1, inputs1, part(&[1u8; 40]), Counters::new(), 1);
        // Touch fp1 so LRU order is observable, then overflow the budget.
        assert!(idx.lookup_full(fp1, &fs).is_some());
        idx.record_full(fp2, inputs2, part(&[2u8; 40]), Counters::new(), 1);
        // 50 + 50 accountable bytes > 64: the older entry (fp1) is dropped.
        assert_eq!(idx.evictions(), 1);
        assert!(idx.lookup_full(fp2, &fs).is_some(), "newest survives");
        assert!(idx.lookup_full(fp1, &fs).is_none(), "LRU victim dropped");
        assert_eq!(mem.live_class(0, MemClass::Memo), idx.bytes_live());
        assert!(mem.live(0) <= 64);
    }

    #[test]
    fn map_entries_downcast_and_verify() {
        let fs = MemFs::new();
        write_file(&fs, &HPath::new("/in/a"), b"v1").unwrap();
        let idx = ReuseIndex::new(2);
        let (fp, inputs) = fp_for(&fs, "/in/a", "m");
        let data: Arc<dyn Any + Send + Sync> = Arc::new(vec![(7usize, "x".to_string())]);
        let mut c = Counters::new();
        c.incr("m3r", "map_records", 5);
        idx.record_map(fp, inputs, data, c, 100);
        let (got, counters) = idx
            .lookup_map::<Vec<(usize, String)>>(fp, &fs)
            .expect("map hit");
        assert_eq!(got[0].0, 7);
        assert_eq!(counters.get("m3r", "map_records"), 5);
        // Wrong type: absent, not a panic.
        assert!(idx.lookup_map::<String>(fp, &fs).is_none());
    }
}
