//! SystemML's blocked-matrix representation.
//!
//! "The matrices had a sparsity factor of 0.001 and were distributed with a
//! blocking factor of 1000." Sparse blocks are stored as *coordinate
//! triplets with full 64-bit indices plus per-entry object overhead* —
//! deliberately fat, standing in for the paper's observation that "the
//! in-memory representation for sparse matrix blocks in the System ML
//! runtime is about 10x less space-efficient" than the hand-optimized CSC
//! blocks of §6.2. Here the inefficiency is ~3x on the wire and in the
//! cache, which is what the simulation prices; the qualitative effect (a
//! SystemML job moves and caches far more bytes per non-zero) is preserved.

use hmr_api::error::{HmrError, Result};
use hmr_api::writable::{write_vi64, write_vu64, ByteReader, ByteSink, Writable};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::dense::DenseMatrix;

/// A block coordinate (SystemML's `MatrixIndexes`), 0-based here.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MatrixIndexes(pub i64, pub i64);

impl Writable for MatrixIndexes {
    fn write_to<S: ByteSink + ?Sized>(&self, out: &mut S) {
        write_vi64(out, self.0);
        write_vi64(out, self.1);
    }
    fn read_from(input: &mut ByteReader<'_>) -> Result<Self> {
        Ok(MatrixIndexes(input.read_vi64()?, input.read_vi64()?))
    }
}

/// Per-entry serialized overhead of the SystemML coordinate format: two
/// 8-byte indices, an 8-byte value, and 8 bytes of object header — 32 bytes
/// per non-zero vs ~12.7 for the §6.2 CSC blocks.
pub const COO_ENTRY_BYTES: usize = 32;

/// A sparse block in coordinate form.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct CooBlock {
    /// Rows in the block.
    pub rows: u32,
    /// Columns in the block.
    pub cols: u32,
    /// `(row, col, value)` triplets, unsorted.
    pub entries: Vec<(u32, u32, f64)>,
}

impl CooBlock {
    /// Stored non-zeros.
    pub fn nnz(&self) -> usize {
        self.entries.len()
    }

    /// `y = B × x` where `x` is a dense matrix sliced to this block's
    /// columns; result is `rows × x.cols`.
    pub fn multiply_dense(&self, x: &DenseMatrix) -> DenseMatrix {
        debug_assert_eq!(x.rows, self.cols as usize);
        let mut y = DenseMatrix::zeros(self.rows as usize, x.cols);
        for &(r, c, v) in &self.entries {
            for j in 0..x.cols {
                y.data[r as usize * x.cols + j] += v * x.get(c as usize, j);
            }
        }
        y
    }

    /// `y = Bᵀ × x` where `x` has `rows` rows; result is `cols × x.cols`.
    pub fn multiply_transpose_dense(&self, x: &DenseMatrix) -> DenseMatrix {
        debug_assert_eq!(x.rows, self.rows as usize);
        let mut y = DenseMatrix::zeros(self.cols as usize, x.cols);
        for &(r, c, v) in &self.entries {
            for j in 0..x.cols {
                y.data[c as usize * x.cols + j] += v * x.get(r as usize, j);
            }
        }
        y
    }
}

impl Writable for CooBlock {
    fn write_to<S: ByteSink + ?Sized>(&self, out: &mut S) {
        out.put_slice(&self.rows.to_le_bytes());
        out.put_slice(&self.cols.to_le_bytes());
        write_vu64(out, self.entries.len() as u64);
        for &(r, c, v) in &self.entries {
            // Fat on purpose: full i64 indices + simulated object header.
            out.put_slice(&(r as i64).to_le_bytes());
            out.put_slice(&(c as i64).to_le_bytes());
            out.put_slice(&v.to_le_bytes());
            out.put_slice(&[0u8; 8]);
        }
    }
    fn read_from(input: &mut ByteReader<'_>) -> Result<Self> {
        let rows = input.read_u32()?;
        let cols = input.read_u32()?;
        let nnz = input.read_vu64()? as usize;
        let mut entries = Vec::with_capacity(nnz);
        for _ in 0..nnz {
            let r = i64::from_le_bytes(input.read_bytes(8)?.try_into().unwrap());
            let c = i64::from_le_bytes(input.read_bytes(8)?.try_into().unwrap());
            let v = f64::from_le_bytes(input.read_bytes(8)?.try_into().unwrap());
            input.read_bytes(8)?; // object-header padding
            entries.push((r as u32, c as u32, v));
        }
        Ok(CooBlock {
            rows,
            cols,
            entries,
        })
    }
    fn serialized_size(&self) -> usize {
        let mut scratch = Vec::new();
        write_vu64(&mut scratch, self.entries.len() as u64);
        8 + scratch.len() + COO_ENTRY_BYTES * self.entries.len()
    }
}

/// A SystemML matrix block: sparse coordinates or dense values.
#[derive(Clone, Debug, PartialEq)]
pub enum MLBlock {
    /// Sparse block.
    Sparse(CooBlock),
    /// Dense block (row-major).
    Dense {
        /// Rows in the block.
        rows: u32,
        /// Columns in the block.
        cols: u32,
        /// Row-major values.
        vals: Vec<f64>,
    },
}

impl MLBlock {
    /// View a dense block as a [`DenseMatrix`].
    pub fn to_dense(&self) -> DenseMatrix {
        match self {
            MLBlock::Dense { rows, cols, vals } => DenseMatrix {
                rows: *rows as usize,
                cols: *cols as usize,
                data: vals.clone(),
            },
            MLBlock::Sparse(b) => {
                let mut m = DenseMatrix::zeros(b.rows as usize, b.cols as usize);
                for &(r, c, v) in &b.entries {
                    m.data[r as usize * b.cols as usize + c as usize] += v;
                }
                m
            }
        }
    }

    /// Wrap a [`DenseMatrix`].
    pub fn from_dense(m: &DenseMatrix) -> MLBlock {
        MLBlock::Dense {
            rows: m.rows as u32,
            cols: m.cols as u32,
            vals: m.data.clone(),
        }
    }
}

impl Writable for MLBlock {
    fn write_to<S: ByteSink + ?Sized>(&self, out: &mut S) {
        match self {
            MLBlock::Sparse(b) => {
                out.put_u8(0);
                b.write_to(out);
            }
            MLBlock::Dense { rows, cols, vals } => {
                out.put_u8(1);
                out.put_slice(&rows.to_le_bytes());
                out.put_slice(&cols.to_le_bytes());
                for v in vals {
                    out.put_slice(&v.to_le_bytes());
                }
            }
        }
    }
    fn read_from(input: &mut ByteReader<'_>) -> Result<Self> {
        match input.read_u8()? {
            0 => Ok(MLBlock::Sparse(CooBlock::read_from(input)?)),
            1 => {
                let rows = input.read_u32()?;
                let cols = input.read_u32()?;
                let n = rows as usize * cols as usize;
                let mut vals = Vec::with_capacity(n);
                for _ in 0..n {
                    vals.push(f64::from_le_bytes(input.read_bytes(8)?.try_into().unwrap()));
                }
                Ok(MLBlock::Dense { rows, cols, vals })
            }
            t => Err(HmrError::Serde(format!("bad MLBlock tag {t}"))),
        }
    }
    fn serialized_size(&self) -> usize {
        1 + match self {
            MLBlock::Sparse(b) => b.serialized_size(),
            MLBlock::Dense { vals, .. } => 8 + 8 * vals.len(),
        }
    }
}

/// Generate a blocked sparse matrix (`n_rows × n_cols`, density `sparsity`)
/// under `dir`, grouped into `num_partitions` part files by row block.
/// Deterministic in `seed`.
#[allow(clippy::too_many_arguments)]
pub fn generate_blocked_sparse(
    fs: &dyn hmr_api::FileSystem,
    dir: &hmr_api::HPath,
    n_rows: usize,
    n_cols: usize,
    block: usize,
    sparsity: f64,
    num_partitions: usize,
    seed: u64,
) -> Result<()> {
    let row_blocks = n_rows.div_ceil(block);
    let col_blocks = n_cols.div_ceil(block);
    let mut rng = StdRng::seed_from_u64(seed);
    for p in 0..num_partitions {
        let mut records: Vec<(MatrixIndexes, MLBlock)> = Vec::new();
        for i in (p..row_blocks).step_by(num_partitions) {
            let rows = (n_rows - i * block).min(block) as u32;
            for j in 0..col_blocks {
                let cols = (n_cols - j * block).min(block) as u32;
                let expect = (rows as f64 * cols as f64 * sparsity).ceil() as usize;
                let mut entries = Vec::with_capacity(expect);
                for _ in 0..expect {
                    entries.push((
                        rng.gen_range(0..rows),
                        rng.gen_range(0..cols),
                        rng.gen_range(0.1..1.0),
                    ));
                }
                if entries.is_empty() {
                    continue;
                }
                records.push((
                    MatrixIndexes(i as i64, j as i64),
                    MLBlock::Sparse(CooBlock {
                        rows,
                        cols,
                        entries,
                    }),
                ));
            }
        }
        hmr_api::io::seqfile::write_seq_file(
            fs,
            &dir.join(&hmr_api::io::part_file_name(p)),
            &records,
        )?;
    }
    Ok(())
}

/// Materialize a blocked sparse matrix back into a dense driver matrix
/// (test helper for small instances).
pub fn read_blocked_to_dense(
    fs: &dyn hmr_api::FileSystem,
    dir: &hmr_api::HPath,
    n_rows: usize,
    n_cols: usize,
    block: usize,
    num_partitions: usize,
) -> Result<DenseMatrix> {
    let mut m = DenseMatrix::zeros(n_rows, n_cols);
    for p in 0..num_partitions {
        let path = dir.join(&hmr_api::io::part_file_name(p));
        if !fs.exists(&path) {
            continue;
        }
        let recs: Vec<(MatrixIndexes, MLBlock)> = hmr_api::io::seqfile::read_seq_file(fs, &path)?;
        for (k, v) in recs {
            let d = v.to_dense();
            let (bi, bj) = (k.0 as usize, k.1 as usize);
            for r in 0..d.rows {
                for c in 0..d.cols {
                    let val = d.get(r, c);
                    if val != 0.0 {
                        m.set(bi * block + r, bj * block + c, m.get(bi * block + r, bj * block + c) + val);
                    }
                }
            }
        }
    }
    Ok(m)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hmr_api::writable::{from_bytes, to_bytes};

    #[test]
    fn indexes_roundtrip() {
        for ix in [MatrixIndexes(0, 0), MatrixIndexes(-3, 1 << 40)] {
            let back: MatrixIndexes = from_bytes(&to_bytes(&ix)).unwrap();
            assert_eq!(back, ix);
        }
    }

    #[test]
    fn coo_roundtrip_and_fatness() {
        let b = CooBlock {
            rows: 10,
            cols: 10,
            entries: vec![(1, 2, 3.0), (9, 9, -1.0)],
        };
        let bytes = to_bytes(&b);
        assert_eq!(bytes.len(), b.serialized_size());
        let back: CooBlock = from_bytes(&bytes).unwrap();
        assert_eq!(back, b);
        // The format really is fat: ≥ 32 bytes per entry.
        assert!(bytes.len() >= 8 + 2 * COO_ENTRY_BYTES);
    }

    #[test]
    fn coo_is_fatter_than_csc_per_nnz() {
        // The §6.4 pessimization holds quantitatively against the §6.2
        // hand-written format.
        let entries: Vec<(u32, u32, f64)> = (0..100).map(|i| (i % 10, i / 10, 1.0)).collect();
        let coo = CooBlock {
            rows: 10,
            cols: 10,
            entries: entries.clone(),
        };
        let csc = workloads_like_csc_size(10, 10, &entries);
        assert!(
            coo.serialized_size() as f64 > 2.0 * csc as f64,
            "COO {} vs CSC-equivalent {}",
            coo.serialized_size(),
            csc
        );
    }

    // Byte count of the same data in a CSC layout (colptr + rowidx + vals).
    fn workloads_like_csc_size(_rows: u32, cols: u32, entries: &[(u32, u32, f64)]) -> usize {
        8 + 1 + 4 * (cols as usize + 1) + 4 * entries.len() + 8 * entries.len()
    }

    #[test]
    fn sparse_dense_multiplies_agree() {
        let b = CooBlock {
            rows: 3,
            cols: 2,
            entries: vec![(0, 0, 2.0), (2, 1, 4.0), (1, 0, 1.0)],
        };
        let x = DenseMatrix::from_vec(2, 2, vec![1.0, 10.0, 2.0, 20.0]).unwrap();
        let y = b.multiply_dense(&x);
        // dense equivalent check
        let bd = MLBlock::Sparse(b.clone()).to_dense();
        let yd = bd.matmul(&x).unwrap();
        assert_eq!(y, yd);
        // transpose path
        let xt = DenseMatrix::from_vec(3, 1, vec![1.0, 2.0, 3.0]).unwrap();
        let yt = b.multiply_transpose_dense(&xt);
        let ytd = bd.transpose().matmul(&xt).unwrap();
        assert_eq!(yt, ytd);
    }

    #[test]
    fn generator_roundtrips_through_dense() {
        let fs = hmr_api::MemFs::new();
        generate_blocked_sparse(&fs, &hmr_api::HPath::new("/m"), 25, 15, 10, 0.2, 3, 7).unwrap();
        let d = read_blocked_to_dense(&fs, &hmr_api::HPath::new("/m"), 25, 15, 10, 3).unwrap();
        let nnz = d.data.iter().filter(|v| **v != 0.0).count();
        assert!(nnz > 20, "expected non-trivial density, got {nnz}");
        assert_eq!(d.rows, 25);
        assert_eq!(d.cols, 15);
    }

    #[test]
    fn mlblock_dense_roundtrip() {
        let m = DenseMatrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
        let b = MLBlock::from_dense(&m);
        let bytes = to_bytes(&b);
        assert_eq!(bytes.len(), b.serialized_size());
        let back: MLBlock = from_bytes(&bytes).unwrap();
        assert_eq!(back.to_dense(), m);
    }
}
