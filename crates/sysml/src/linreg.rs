//! Linear regression by conjugate gradient (paper §6.4, Figure 10).
//!
//! Solve `(XᵀX + λI) w = Xᵀy` for the weights of a least-squares fit.
//! "The experiment varied the number of sample points, whereas the number
//! of variables was constant at 10000." Each CG iteration multiplies the
//! big sparse `X` twice (forward, then transposed) — two `mapmult` jobs —
//! and does scalar/vector updates in the driver.

use hmr_api::error::Result;
use hmr_api::fs::{FileSystem, HPath};
use hmr_api::job::{Engine, JobResult};

use crate::dense::DenseMatrix;
use crate::mapmult::{read_dense_result, run_mapmult};

/// Outcome of a linear-regression run.
#[derive(Debug)]
pub struct LinRegResult {
    /// Per-iteration job results (one initial job + two per CG iteration).
    pub iterations: Vec<Vec<JobResult>>,
    /// Fitted weights (p×1).
    pub w: DenseMatrix,
    /// Residual norms ‖r‖₂ after each iteration (for convergence checks).
    pub residual_norms: Vec<f64>,
}

impl LinRegResult {
    /// Total simulated seconds across all jobs.
    pub fn total_sim_time(&self) -> f64 {
        self.iterations.iter().flatten().map(|r| r.sim_time).sum()
    }
}

/// Run CG linear regression: `x_dir` holds the blocked sparse `X (n×p)`,
/// `y` the dense targets (n×1), `lambda` the ridge term.
#[allow(clippy::too_many_arguments)]
pub fn run_linreg<E: Engine>(
    engine: &mut E,
    fs: &dyn FileSystem,
    x_dir: &HPath,
    work: &HPath,
    y: &DenseMatrix,
    n: usize,
    p: usize,
    block: usize,
    parts: usize,
    iterations: usize,
    lambda: f64,
) -> Result<LinRegResult> {
    // b = Xᵀ y  (one mapmult job)
    let b_dir = work.join("linreg_b");
    let j0 = run_mapmult(
        engine,
        fs,
        x_dir,
        &work.join("op_y"),
        y,
        &b_dir,
        true,
        block,
        parts,
    )?;
    let b = read_dense_result(fs, &b_dir, parts, p, 1, block)?;

    let mut w = DenseMatrix::zeros(p, 1);
    let mut r = b.clone();
    let mut dir = r.clone();
    let mut rr = r.norm_sq();
    let mut job_log = vec![vec![j0]];
    let mut residual_norms = Vec::with_capacity(iterations);

    for it in 0..iterations {
        // t = X·dir (n×1), then q = Xᵀ·t + λ·dir (p×1): two mapmult jobs.
        let t_dir = work.join(&format!("linreg{it}_t"));
        let j1 = run_mapmult(
            engine,
            fs,
            x_dir,
            &work.join(&format!("op_p{it}")),
            &dir,
            &t_dir,
            false,
            block,
            parts,
        )?;
        let t = read_dense_result(fs, &t_dir, parts, n, 1, block)?;
        let q_dir = work.join(&format!("linreg{it}_q"));
        let j2 = run_mapmult(
            engine,
            fs,
            x_dir,
            &work.join(&format!("op_t{it}")),
            &t,
            &q_dir,
            true,
            block,
            parts,
        )?;
        let q = read_dense_result(fs, &q_dir, parts, p, 1, block)?.axpy(&dir, lambda)?;

        let dq = dir.dot(&q);
        if dq.abs() < f64::MIN_POSITIVE {
            job_log.push(vec![j1, j2]);
            residual_norms.push(rr.sqrt());
            break;
        }
        let alpha = rr / dq;
        w = w.axpy(&dir, alpha)?;
        r = r.axpy(&q, -alpha)?;
        let rr_new = r.norm_sq();
        let beta = rr_new / rr;
        dir = r.axpy(&dir, beta)?;
        rr = rr_new;
        residual_norms.push(rr.sqrt());
        job_log.push(vec![j1, j2]);
    }
    Ok(LinRegResult {
        iterations: job_log,
        w,
        residual_norms,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::{generate_blocked_sparse, read_blocked_to_dense};
    use m3r::M3REngine;
    use simdfs::SimDfs;
    use simgrid::{Cluster, CostModel};
    use std::sync::Arc;

    #[test]
    fn cg_converges_toward_the_normal_equations_solution() {
        let cluster = Cluster::new(3, CostModel::default());
        let fs = SimDfs::with_config(cluster.clone(), 1 << 20, 2);
        let (n, p, block, parts) = (40, 10, 10, 3);
        generate_blocked_sparse(&fs, &HPath::new("/x"), n, p, block, 0.4, parts, 21).unwrap();
        let x = read_blocked_to_dense(&fs, &HPath::new("/x"), n, p, block, parts).unwrap();
        // Ground truth: y = X w*
        let w_star =
            DenseMatrix::from_vec(p, 1, (0..p).map(|i| (i as f64) - 4.0).collect()).unwrap();
        let y = x.matmul(&w_star).unwrap();

        let mut engine = M3REngine::new(cluster, Arc::new(fs.clone()));
        let result = run_linreg(
            &mut engine,
            &fs,
            &HPath::new("/x"),
            &HPath::new("/work"),
            &y,
            n,
            p,
            block,
            parts,
            12,
            0.0,
        )
        .unwrap();
        // CG must shrink the residual dramatically.
        let first = result.residual_norms.first().copied().unwrap();
        let last = result.residual_norms.last().copied().unwrap();
        assert!(
            last < 1e-6 * first.max(1.0),
            "residual should collapse: first {first}, last {last}"
        );
        // And the weights approximate w*.
        for (got, want) in result.w.data.iter().zip(&w_star.data) {
            assert!((got - want).abs() < 1e-4, "{got} vs {want}");
        }
    }

    #[test]
    fn each_cg_iteration_runs_two_jobs() {
        let cluster = Cluster::new(2, CostModel::default());
        let fs = SimDfs::with_config(cluster.clone(), 1 << 20, 2);
        let (n, p, block, parts) = (20, 10, 10, 2);
        generate_blocked_sparse(&fs, &HPath::new("/x"), n, p, block, 0.4, parts, 5).unwrap();
        let y = DenseMatrix::from_vec(n, 1, vec![1.0; n]).unwrap();
        let mut engine = M3REngine::new(cluster, Arc::new(fs.clone()));
        let result = run_linreg(
            &mut engine,
            &fs,
            &HPath::new("/x"),
            &HPath::new("/work"),
            &y,
            n,
            p,
            block,
            parts,
            3,
            0.1,
        )
        .unwrap();
        assert_eq!(result.iterations[0].len(), 1, "initial Xᵀy job");
        for it in &result.iterations[1..] {
            assert_eq!(it.len(), 2, "forward + transpose jobs");
        }
    }
}
