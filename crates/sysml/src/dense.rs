//! Driver-side dense matrices — SystemML's control-program (CP) operators
//! for data small enough to live in the driver.

use hmr_api::error::{HmrError, Result};

/// A row-major dense matrix.
#[derive(Clone, Debug, PartialEq)]
pub struct DenseMatrix {
    /// Row count.
    pub rows: usize,
    /// Column count.
    pub cols: usize,
    /// Row-major values (`rows * cols`).
    pub data: Vec<f64>,
}

impl DenseMatrix {
    /// A zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        DenseMatrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Build from row-major data.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Result<Self> {
        if data.len() != rows * cols {
            return Err(HmrError::InvalidJob(format!(
                "dense matrix {rows}x{cols} needs {} values, got {}",
                rows * cols,
                data.len()
            )));
        }
        Ok(DenseMatrix { rows, cols, data })
    }

    /// Element accessor.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        self.data[r * self.cols + c]
    }

    /// Element mutator.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        self.data[r * self.cols + c] = v;
    }

    /// `self × other`.
    pub fn matmul(&self, other: &DenseMatrix) -> Result<DenseMatrix> {
        if self.cols != other.rows {
            return Err(HmrError::InvalidJob(format!(
                "matmul shape mismatch: {}x{} × {}x{}",
                self.rows, self.cols, other.rows, other.cols
            )));
        }
        let mut out = DenseMatrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self.get(i, k);
                if a == 0.0 {
                    continue;
                }
                for j in 0..other.cols {
                    out.data[i * other.cols + j] += a * other.get(k, j);
                }
            }
        }
        Ok(out)
    }

    /// `selfᵀ`.
    pub fn transpose(&self) -> DenseMatrix {
        let mut out = DenseMatrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.set(c, r, self.get(r, c));
            }
        }
        out
    }

    /// Element-wise `self ∘ a ⊘ (b + eps)` — the GNMF multiplicative
    /// update kernel.
    pub fn mul_div(&self, a: &DenseMatrix, b: &DenseMatrix, eps: f64) -> Result<DenseMatrix> {
        if self.rows != a.rows || self.cols != a.cols || self.rows != b.rows || self.cols != b.cols
        {
            return Err(HmrError::InvalidJob("mul_div shape mismatch".into()));
        }
        let data = self
            .data
            .iter()
            .zip(&a.data)
            .zip(&b.data)
            .map(|((s, x), y)| s * x / (y + eps))
            .collect();
        DenseMatrix::from_vec(self.rows, self.cols, data)
    }

    /// `self + other * scale`.
    pub fn axpy(&self, other: &DenseMatrix, scale: f64) -> Result<DenseMatrix> {
        if self.rows != other.rows || self.cols != other.cols {
            return Err(HmrError::InvalidJob("axpy shape mismatch".into()));
        }
        let data = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| a + b * scale)
            .collect();
        DenseMatrix::from_vec(self.rows, self.cols, data)
    }

    /// Frobenius inner product `⟨self, other⟩`.
    pub fn dot(&self, other: &DenseMatrix) -> f64 {
        self.data.iter().zip(&other.data).map(|(a, b)| a * b).sum()
    }

    /// Squared Frobenius norm.
    pub fn norm_sq(&self) -> f64 {
        self.dot(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(rows: usize, cols: usize, d: &[f64]) -> DenseMatrix {
        DenseMatrix::from_vec(rows, cols, d.to_vec()).unwrap()
    }

    #[test]
    fn matmul_small() {
        let a = m(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = m(3, 2, &[7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = a.matmul(&b).unwrap();
        assert_eq!(c.data, vec![58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_shape_mismatch_is_error() {
        let a = m(2, 3, &[0.0; 6]);
        assert!(a.matmul(&a).is_err());
    }

    #[test]
    fn transpose_roundtrip() {
        let a = m(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose().get(2, 1), 6.0);
    }

    #[test]
    fn mul_div_is_elementwise() {
        let s = m(1, 3, &[2.0, 4.0, 6.0]);
        let a = m(1, 3, &[1.0, 2.0, 3.0]);
        let b = m(1, 3, &[2.0, 4.0, 6.0]);
        let r = s.mul_div(&a, &b, 0.0).unwrap();
        assert_eq!(r.data, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn dot_and_axpy() {
        let a = m(1, 3, &[1.0, 2.0, 3.0]);
        let b = m(1, 3, &[4.0, 5.0, 6.0]);
        assert_eq!(a.dot(&b), 32.0);
        assert_eq!(a.axpy(&b, 2.0).unwrap().data, vec![9.0, 12.0, 15.0]);
        assert_eq!(b.norm_sq(), 77.0);
    }

    #[test]
    fn bad_dimensions_rejected() {
        assert!(DenseMatrix::from_vec(2, 2, vec![0.0; 3]).is_err());
    }
}
