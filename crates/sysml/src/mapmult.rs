//! The `mapmult` job pattern: big-sparse × small-dense multiplication, the
//! workhorse SystemML compiles matrix products into when one operand fits
//! in memory. The small operand travels through the **distributed cache**;
//! mappers multiply each sparse block against the matching slice and emit
//! dense partials keyed by result block row; reducers sum.
//!
//! Faithful §6.4 pessimizations: no `ImmutableOutput`, the default hash
//! partitioner, and the fat COO block format from [`crate::block`].

use std::sync::Arc;

use hmr_api::collect::OutputCollector;
use hmr_api::conf::JobConf;
use hmr_api::counters::TaskContext;
use hmr_api::error::{HmrError, Result};
use hmr_api::fs::{FileSystem, HPath};
use hmr_api::io::{InputFormat, OutputFormat, SequenceFileInputFormat, SequenceFileOutputFormat};
use hmr_api::job::{Engine, JobDef, JobResult};
use hmr_api::task::{TaskMapper, TaskReducer};
use simgrid::cost::Charge;

use crate::block::{MLBlock, MatrixIndexes};
use crate::dense::DenseMatrix;
use crate::SECONDS_PER_FLOP;

/// Serialize a dense operand for the distributed cache.
pub fn write_dense_operand(fs: &dyn FileSystem, path: &HPath, m: &DenseMatrix) -> Result<()> {
    let mut bytes = Vec::with_capacity(16 + 8 * m.data.len());
    bytes.extend_from_slice(&(m.rows as u64).to_le_bytes());
    bytes.extend_from_slice(&(m.cols as u64).to_le_bytes());
    for v in &m.data {
        bytes.extend_from_slice(&v.to_le_bytes());
    }
    if fs.exists(path) {
        fs.delete(path, false)?;
    }
    hmr_api::fs::write_file(fs, path, &bytes)
}

fn parse_dense_operand(bytes: &[u8]) -> Result<DenseMatrix> {
    if bytes.len() < 16 {
        return Err(HmrError::Serde("dense operand too short".into()));
    }
    let rows = u64::from_le_bytes(bytes[0..8].try_into().unwrap()) as usize;
    let cols = u64::from_le_bytes(bytes[8..16].try_into().unwrap()) as usize;
    if bytes.len() != 16 + 8 * rows * cols {
        return Err(HmrError::Serde("dense operand length mismatch".into()));
    }
    let data = bytes[16..]
        .chunks_exact(8)
        .map(|c| f64::from_le_bytes(c.try_into().unwrap()))
        .collect();
    DenseMatrix::from_vec(rows, cols, data)
}

/// `C = A × B` (or `C = Aᵀ × B`): A blocked sparse on the DFS, B dense in
/// the distributed cache, C dense blocks keyed `(block_row, 0)`.
pub struct MapMultJob {
    /// Distributed-cache path of the dense operand.
    pub operand_path: HPath,
    /// Multiply with `Aᵀ` instead of `A`.
    pub transpose: bool,
    /// Blocking factor of A (and of the result).
    pub block: usize,
}

struct MapMultMapper {
    operand_path: String,
    transpose: bool,
    block: usize,
    operand: Option<Arc<DenseMatrix>>,
}

impl MapMultMapper {
    fn operand(&mut self, ctx: &TaskContext) -> Result<Arc<DenseMatrix>> {
        if let Some(op) = &self.operand {
            return Ok(Arc::clone(op));
        }
        let bytes = ctx.cache_file(&self.operand_path).ok_or_else(|| {
            HmrError::InvalidJob(format!(
                "mapmult operand {} not in distributed cache",
                self.operand_path
            ))
        })?;
        let m = Arc::new(parse_dense_operand(&bytes)?);
        self.operand = Some(Arc::clone(&m));
        Ok(m)
    }
}

impl TaskMapper<MatrixIndexes, MLBlock, MatrixIndexes, MLBlock> for MapMultMapper {
    fn map(
        &mut self,
        key: Arc<MatrixIndexes>,
        value: Arc<MLBlock>,
        out: &mut dyn OutputCollector<MatrixIndexes, MLBlock>,
        ctx: &mut TaskContext,
    ) -> Result<()> {
        let b = self.operand(ctx)?;
        let MLBlock::Sparse(a) = &*value else {
            return Err(HmrError::InvalidJob("mapmult expects sparse input".into()));
        };
        let (i, j) = (key.0 as usize, key.1 as usize);
        // Slice the dense operand to this block's input rows.
        let (slice_start, slice_rows, out_key) = if self.transpose {
            (i * self.block, a.rows as usize, j as i64)
        } else {
            (j * self.block, a.cols as usize, i as i64)
        };
        if slice_start + slice_rows > b.rows {
            return Err(HmrError::InvalidJob(format!(
                "operand has {} rows, block needs rows {}..{}",
                b.rows,
                slice_start,
                slice_start + slice_rows
            )));
        }
        let slice = DenseMatrix::from_vec(
            slice_rows,
            b.cols,
            b.data[slice_start * b.cols..(slice_start + slice_rows) * b.cols].to_vec(),
        )?;
        simgrid::meter::charge(Charge::Compute {
            seconds: 2.0 * a.nnz() as f64 * b.cols as f64 * SECONDS_PER_FLOP,
        });
        let partial = if self.transpose {
            a.multiply_transpose_dense(&slice)
        } else {
            a.multiply_dense(&slice)
        };
        out.collect(
            Arc::new(MatrixIndexes(out_key, 0)),
            Arc::new(MLBlock::from_dense(&partial)),
        )
    }
}

struct SumDenseReducer;

impl TaskReducer<MatrixIndexes, MLBlock, MatrixIndexes, MLBlock> for SumDenseReducer {
    fn reduce(
        &mut self,
        key: Arc<MatrixIndexes>,
        values: &mut dyn Iterator<Item = Arc<MLBlock>>,
        out: &mut dyn OutputCollector<MatrixIndexes, MLBlock>,
        _ctx: &mut TaskContext,
    ) -> Result<()> {
        let mut acc: Option<DenseMatrix> = None;
        let mut ops = 0usize;
        for v in values {
            let d = v.to_dense();
            match &mut acc {
                None => acc = Some(d),
                Some(a) => {
                    ops += d.data.len();
                    *a = a.axpy(&d, 1.0)?;
                }
            }
        }
        simgrid::meter::charge(Charge::Compute {
            seconds: ops as f64 * SECONDS_PER_FLOP,
        });
        if let Some(a) = acc {
            out.collect(key, Arc::new(MLBlock::from_dense(&a)))?;
        }
        Ok(())
    }
}

impl JobDef for MapMultJob {
    type K1 = MatrixIndexes;
    type V1 = MLBlock;
    type K2 = MatrixIndexes;
    type V2 = MLBlock;
    type K3 = MatrixIndexes;
    type V3 = MLBlock;

    fn create_mapper(
        &self,
        _conf: &JobConf,
    ) -> Box<dyn TaskMapper<MatrixIndexes, MLBlock, MatrixIndexes, MLBlock>> {
        Box::new(MapMultMapper {
            operand_path: self.operand_path.as_str().to_string(),
            transpose: self.transpose,
            block: self.block,
            operand: None,
        })
    }
    fn create_reducer(
        &self,
        _conf: &JobConf,
    ) -> Box<dyn TaskReducer<MatrixIndexes, MLBlock, MatrixIndexes, MLBlock>> {
        Box::new(SumDenseReducer)
    }
    fn input_format(
        &self,
        _conf: &JobConf,
    ) -> Box<dyn InputFormat<MatrixIndexes, MLBlock>> {
        Box::new(SequenceFileInputFormat::new())
    }
    fn output_format(
        &self,
        _conf: &JobConf,
    ) -> Box<dyn OutputFormat<MatrixIndexes, MLBlock>> {
        Box::new(SequenceFileOutputFormat::new())
    }
    // Deliberately NOT ImmutableOutput and on the default hash partitioner:
    // "the code generated by the compiler is not aware of ImmutableOutput
    // (hence is not optimized for cloning), and does not take advantage of
    // partition-stability" (§6.4).
    fn name(&self) -> &str {
        if self.transpose {
            "sysml-mapmult-t"
        } else {
            "sysml-mapmult"
        }
    }

    fn memo_identity(&self) -> Option<hmr_api::job::ComputeIdentity> {
        // `transpose` and `block` change what the mapper computes, so they
        // are folded into the code identity. The operand's *content*
        // enters the fingerprint separately, as the cache file's content
        // version; its path as an input path — neither belongs here.
        Some(hmr_api::job::ComputeIdentity::new(
            format!(
                "sysml.MapMult(transpose={},block={})",
                self.transpose, self.block
            ),
            "sysml.SumDenseReducer",
        ))
    }
}

/// Run one mapmult: `result_dir = op(A[dir]) × B[operand]`. Returns the
/// job result; read the product back with [`read_dense_result`].
#[allow(clippy::too_many_arguments)]
pub fn run_mapmult<E: Engine>(
    engine: &mut E,
    fs: &dyn FileSystem,
    a_dir: &HPath,
    operand_path: &HPath,
    operand: &DenseMatrix,
    out_dir: &HPath,
    transpose: bool,
    block: usize,
    reducers: usize,
) -> Result<JobResult> {
    write_dense_operand(fs, operand_path, operand)?;
    let mut conf = JobConf::new();
    conf.add_input_path(a_dir);
    conf.set_output_path(out_dir);
    conf.set_num_reduce_tasks(reducers);
    conf.add_cache_file(operand_path);
    engine.run_job(
        Arc::new(MapMultJob {
            operand_path: operand_path.clone(),
            transpose,
            block,
        }),
        &conf,
    )
}

/// Assemble the blocked dense result of a mapmult into one driver matrix
/// with `total_rows` rows.
pub fn read_dense_result(
    fs: &dyn FileSystem,
    dir: &HPath,
    reducers: usize,
    total_rows: usize,
    cols: usize,
    block: usize,
) -> Result<DenseMatrix> {
    let mut out = DenseMatrix::zeros(total_rows, cols);
    for p in 0..reducers {
        let path = dir.join(&hmr_api::io::part_file_name(p));
        if !fs.exists(&path) {
            continue;
        }
        let recs: Vec<(MatrixIndexes, MLBlock)> = hmr_api::io::seqfile::read_seq_file(fs, &path)?;
        for (k, v) in recs {
            let d = v.to_dense();
            let base = k.0 as usize * block;
            for r in 0..d.rows {
                for c in 0..d.cols {
                    out.set(base + r, c, d.get(r, c));
                }
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::{generate_blocked_sparse, read_blocked_to_dense};
    use m3r::M3REngine;
    use simdfs::SimDfs;
    use simgrid::{Cluster, CostModel};

    #[test]
    fn operand_file_roundtrip() {
        let fs = hmr_api::MemFs::new();
        let m = DenseMatrix::from_vec(3, 2, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
        write_dense_operand(&fs, &HPath::new("/op"), &m).unwrap();
        let bytes = hmr_api::fs::read_file(&fs, &HPath::new("/op")).unwrap();
        assert_eq!(parse_dense_operand(&bytes).unwrap(), m);
        // Overwrite works (a new operand per iteration).
        let m2 = DenseMatrix::zeros(1, 1);
        write_dense_operand(&fs, &HPath::new("/op"), &m2).unwrap();
        let bytes = hmr_api::fs::read_file(&fs, &HPath::new("/op")).unwrap();
        assert_eq!(parse_dense_operand(&bytes).unwrap(), m2);
    }

    #[test]
    fn mapmult_matches_dense_reference_both_modes() {
        let cluster = Cluster::new(3, CostModel::default());
        let fs = SimDfs::with_config(cluster.clone(), 1 << 20, 2);
        let (n_rows, n_cols, block, parts, k) = (30, 20, 10, 3, 4);
        generate_blocked_sparse(&fs, &HPath::new("/a"), n_rows, n_cols, block, 0.2, parts, 3)
            .unwrap();
        let a = read_blocked_to_dense(&fs, &HPath::new("/a"), n_rows, n_cols, block, parts)
            .unwrap();
        let mut engine = M3REngine::new(cluster, Arc::new(fs.clone()));

        // C = A × B  (B: n_cols × k)
        let b = DenseMatrix::from_vec(
            n_cols,
            k,
            (0..n_cols * k).map(|i| (i % 7) as f64 * 0.25).collect(),
        )
        .unwrap();
        run_mapmult(
            &mut engine,
            &fs,
            &HPath::new("/a"),
            &HPath::new("/ops/b"),
            &b,
            &HPath::new("/c"),
            false,
            block,
            parts,
        )
        .unwrap();
        let c = read_dense_result(&fs, &HPath::new("/c"), parts, n_rows, k, block).unwrap();
        let expect = a.matmul(&b).unwrap();
        for (x, y) in c.data.iter().zip(&expect.data) {
            assert!((x - y).abs() < 1e-9, "{x} vs {y}");
        }

        // Ct = Aᵀ × D  (D: n_rows × k)
        let d = DenseMatrix::from_vec(
            n_rows,
            k,
            (0..n_rows * k).map(|i| ((i % 5) as f64) - 2.0).collect(),
        )
        .unwrap();
        run_mapmult(
            &mut engine,
            &fs,
            &HPath::new("/a"),
            &HPath::new("/ops/d"),
            &d,
            &HPath::new("/ct"),
            true,
            block,
            parts,
        )
        .unwrap();
        let ct = read_dense_result(&fs, &HPath::new("/ct"), parts, n_cols, k, block).unwrap();
        let expect_t = a.transpose().matmul(&d).unwrap();
        for (x, y) in ct.data.iter().zip(&expect_t.data) {
            assert!((x - y).abs() < 1e-9, "{x} vs {y}");
        }
    }

    #[test]
    fn missing_operand_is_a_clean_error() {
        let cluster = Cluster::new(2, CostModel::default());
        let fs = SimDfs::with_config(cluster.clone(), 1 << 20, 2);
        generate_blocked_sparse(&fs, &HPath::new("/a"), 10, 10, 10, 0.3, 2, 1).unwrap();
        let mut engine = M3REngine::new(cluster, Arc::new(fs.clone()));
        let mut conf = JobConf::new();
        conf.add_input_path(&HPath::new("/a"));
        conf.set_output_path(&HPath::new("/c"));
        conf.set_num_reduce_tasks(2);
        // no add_cache_file → mapper must fail with InvalidJob
        let err = engine
            .run_job(
                Arc::new(MapMultJob {
                    operand_path: HPath::new("/ops/missing"),
                    transpose: false,
                    block: 10,
                }),
                &conf,
            )
            .unwrap_err();
        assert!(matches!(err, HmrError::InvalidJob(_)));
    }
}
