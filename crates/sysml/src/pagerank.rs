//! PageRank (paper §6.4, Figure 11): power iteration over a sparse link
//! matrix. "The independent variable in this case was the size of the
//! graph, i.e. the size of the square matrix G."
//!
//! One `mapmult` job per iteration computes `Gᵀ·r`; the driver applies the
//! damping factor and renormalizes.

use hmr_api::error::Result;
use hmr_api::fs::{FileSystem, HPath};
use hmr_api::job::{Engine, JobResult};

use crate::dense::DenseMatrix;
use crate::mapmult::{read_dense_result, run_mapmult};

/// Outcome of a PageRank run.
#[derive(Debug)]
pub struct PageRankResult {
    /// Per-iteration job results (one mapmult per iteration).
    pub iterations: Vec<Vec<JobResult>>,
    /// Final rank vector (n×1, L1-normalized).
    pub ranks: DenseMatrix,
}

impl PageRankResult {
    /// Total simulated seconds across all jobs.
    pub fn total_sim_time(&self) -> f64 {
        self.iterations.iter().flatten().map(|r| r.sim_time).sum()
    }
}

/// Run `iterations` of damped power iteration over the blocked sparse link
/// matrix in `g_dir` (n×n).
#[allow(clippy::too_many_arguments)]
pub fn run_pagerank<E: Engine>(
    engine: &mut E,
    fs: &dyn FileSystem,
    g_dir: &HPath,
    work: &HPath,
    n: usize,
    block: usize,
    parts: usize,
    iterations: usize,
    damping: f64,
) -> Result<PageRankResult> {
    let mut r = DenseMatrix::from_vec(n, 1, vec![1.0 / n as f64; n])?;
    let mut job_log = Vec::with_capacity(iterations);
    for it in 0..iterations {
        let out_dir = work.join(&format!("pr{it}"));
        // A resubmitted run reuses the same work dir (that is what makes
        // its jobs fingerprint-identical for cross-job memoization);
        // clear the previous run's output so the engine starts from an
        // empty directory either way. No-op — and no simulated cost —
        // on a first run.
        if fs.exists(&out_dir) {
            fs.delete(&out_dir, true)?;
        }
        let j = run_mapmult(
            engine,
            fs,
            g_dir,
            &work.join(&format!("op_r{it}")),
            &r,
            &out_dir,
            true,
            block,
            parts,
        )?;
        let spread = read_dense_result(fs, &out_dir, parts, n, 1, block)?;
        // r ← d·(Gᵀr) + (1-d)/n, then L1-normalize (G is not column-
        // stochastic in the synthetic generator).
        let teleport = (1.0 - damping) / n as f64;
        let mut next: Vec<f64> = spread.data.iter().map(|v| damping * v + teleport).collect();
        let total: f64 = next.iter().sum();
        if total > 0.0 {
            for v in &mut next {
                *v /= total;
            }
        }
        r = DenseMatrix::from_vec(n, 1, next)?;
        job_log.push(vec![j]);
    }
    Ok(PageRankResult {
        iterations: job_log,
        ranks: r,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::generate_blocked_sparse;
    use m3r::M3REngine;
    use simdfs::SimDfs;
    use simgrid::{Cluster, CostModel};
    use std::sync::Arc;

    #[test]
    fn ranks_are_a_probability_distribution_and_converge() {
        let cluster = Cluster::new(3, CostModel::default());
        let fs = SimDfs::with_config(cluster.clone(), 1 << 20, 2);
        let (n, block, parts) = (30, 10, 3);
        generate_blocked_sparse(&fs, &HPath::new("/g"), n, n, block, 0.2, parts, 8).unwrap();
        let mut engine = M3REngine::new(cluster, Arc::new(fs.clone()));
        let r5 = run_pagerank(
            &mut engine,
            &fs,
            &HPath::new("/g"),
            &HPath::new("/w5"),
            n,
            block,
            parts,
            5,
            0.85,
        )
        .unwrap();
        let sum: f64 = r5.ranks.data.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9, "L1-normalized: {sum}");
        assert!(r5.ranks.data.iter().all(|v| *v >= 0.0));

        // Convergence: successive iterations change less and less.
        let r6 = run_pagerank(
            &mut engine,
            &fs,
            &HPath::new("/g"),
            &HPath::new("/w6"),
            n,
            block,
            parts,
            6,
            0.85,
        )
        .unwrap();
        let diff_56: f64 = r5
            .ranks
            .data
            .iter()
            .zip(&r6.ranks.data)
            .map(|(a, b)| (a - b).abs())
            .sum();
        assert!(diff_56 < 0.05, "iterates nearly fixed: {diff_56}");
    }

    #[test]
    fn one_job_per_iteration() {
        let cluster = Cluster::new(2, CostModel::default());
        let fs = SimDfs::with_config(cluster.clone(), 1 << 20, 2);
        generate_blocked_sparse(&fs, &HPath::new("/g"), 20, 20, 10, 0.2, 2, 8).unwrap();
        let mut engine = M3REngine::new(cluster, Arc::new(fs.clone()));
        let r = run_pagerank(
            &mut engine,
            &fs,
            &HPath::new("/g"),
            &HPath::new("/w"),
            20,
            10,
            2,
            4,
            0.85,
        )
        .unwrap();
        assert_eq!(r.iterations.len(), 4);
        for it in &r.iterations {
            assert_eq!(it.len(), 1);
        }
    }
}
