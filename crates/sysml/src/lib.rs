#![warn(missing_docs)]
#![allow(clippy::type_complexity)]

//! # sysml — a miniature SystemML (paper §6.4)
//!
//! SystemML is "an R-like declarative domain specific language \[whose\]
//! compiler produces optimized Hadoop jobs". The paper runs three of its
//! programs — global non-negative matrix factorization, linear regression,
//! and PageRank — *unmodified* on both engines, which makes SystemML "a
//! simple and convenient way to benchmark the performance of multiple Map
//! Reduce implementations on standard Machine Learning algorithms".
//!
//! This crate reproduces the slice of SystemML those benchmarks exercise:
//!
//! * a blocked-matrix runtime ([`block`]) whose sparse blocks use a
//!   deliberately *inefficient* coordinate representation — the paper notes
//!   SystemML's block format is "about 10x less space-efficient" than the
//!   hand-written CSC of §6.2;
//! * the `mapmult` job pattern ([`mapmult`]): the big sparse matrix streams
//!   through mappers while the small dense operand is broadcast through the
//!   distributed cache; partial products are summed by block row;
//! * driver-side dense algebra ([`dense`]) standing in for SystemML's
//!   control-program (CP) operators on small matrices;
//! * the three benchmark algorithms ([`gnmf`], [`linreg`], [`pagerank`]),
//!   each generic over the [`hmr_api::Engine`] so the identical job
//!   sequence runs on Hadoop and on M3R.
//!
//! Faithful pessimizations (§6.4): the generated jobs do **not** implement
//! `ImmutableOutput` (so M3R clones defensively), do **not** use a
//! locality-aware partitioner (no partition-stability exploitation), and
//! carry the fat block format. M3R's remaining advantages — input caching
//! across the job sequence, cheap job startup, in-memory shuffle — are
//! exactly what Figures 9–11 measure.

pub mod block;
pub mod dense;
pub mod gnmf;
pub mod linreg;
pub mod mapmult;
pub mod pagerank;

pub use block::{generate_blocked_sparse, CooBlock, MLBlock, MatrixIndexes};
pub use dense::DenseMatrix;
pub use gnmf::{run_gnmf, GnmfResult};
pub use linreg::{run_linreg, LinRegResult};
pub use mapmult::{read_dense_result, write_dense_operand, MapMultJob};
pub use pagerank::{run_pagerank, PageRankResult};

/// Simulated seconds per floating-point operation in SystemML-generated
/// kernels (JIT-compiled Java on the paper's Opterons).
pub const SECONDS_PER_FLOP: f64 = 8e-9;
