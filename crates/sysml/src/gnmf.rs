//! Global non-negative matrix factorization (paper §6.4, Figure 9).
//!
//! Factor a sparse `V (n×m)` into non-negative `W (n×k)` and `H (k×m)` with
//! the multiplicative updates
//!
//! ```text
//! H ← H ∘ (WᵀV) ⊘ (WᵀW·H + ε)        W ← W ∘ (V·Hᵀ) ⊘ (W·HHᵀ + ε)
//! ```
//!
//! The two products that touch the big sparse `V` run as MapReduce
//! `mapmult` jobs (two per iteration); the `k×k` algebra runs in the driver
//! (SystemML's CP operators). "The experiment varied the number of rows in
//! V, keeping the number of columns constant at 100000, and the width of W
//! (height of H) was 10."

use hmr_api::error::Result;
use hmr_api::fs::{FileSystem, HPath};
use hmr_api::job::{Engine, JobResult};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::dense::DenseMatrix;
use crate::mapmult::{read_dense_result, run_mapmult};

/// Outcome of a GNMF run.
#[derive(Debug)]
pub struct GnmfResult {
    /// Per-iteration job results (two mapmult jobs per iteration).
    pub iterations: Vec<Vec<JobResult>>,
    /// Final left factor (n×k).
    pub w: DenseMatrix,
    /// Final right factor (k×m).
    pub h: DenseMatrix,
}

impl GnmfResult {
    /// Total simulated seconds across all jobs.
    pub fn total_sim_time(&self) -> f64 {
        self.iterations
            .iter()
            .flatten()
            .map(|r| r.sim_time)
            .sum()
    }
}

/// Run GNMF on `engine`. `v_dir` holds the blocked sparse `V` (n×m,
/// blocking factor `block`, `parts` partitions/part files).
#[allow(clippy::too_many_arguments)]
pub fn run_gnmf<E: Engine>(
    engine: &mut E,
    fs: &dyn FileSystem,
    v_dir: &HPath,
    work: &HPath,
    n: usize,
    m: usize,
    k: usize,
    block: usize,
    parts: usize,
    iterations: usize,
    seed: u64,
) -> Result<GnmfResult> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut w = DenseMatrix::from_vec(n, k, (0..n * k).map(|_| rng.gen_range(0.1..1.0)).collect())?;
    let mut h = DenseMatrix::from_vec(k, m, (0..k * m).map(|_| rng.gen_range(0.1..1.0)).collect())?;
    let eps = 1e-9;

    let mut iters = Vec::with_capacity(iterations);
    for it in 0..iterations {
        // --- H update: needs WᵀV ------------------------------------------
        // mapmult computes VᵀW (m×k); transpose in the driver.
        let vtw_dir = work.join(&format!("gnmf{it}_vtw"));
        // Resubmitted runs reuse the work dir (keeping job fingerprints
        // stable for cross-job memoization); clear stale output first.
        if fs.exists(&vtw_dir) {
            fs.delete(&vtw_dir, true)?;
        }
        let j1 = run_mapmult(
            engine,
            fs,
            v_dir,
            &work.join(&format!("op_w{it}")),
            &w,
            &vtw_dir,
            true,
            block,
            parts,
        )?;
        let vtw = read_dense_result(fs, &vtw_dir, parts, m, k, block)?;
        let wtv = vtw.transpose(); // k×m
        let wtw = w.transpose().matmul(&w)?; // k×k
        h = h.mul_div(&wtv, &wtw.matmul(&h)?, eps)?;

        // --- W update: needs V·Hᵀ ------------------------------------------
        let vht_dir = work.join(&format!("gnmf{it}_vht"));
        if fs.exists(&vht_dir) {
            fs.delete(&vht_dir, true)?;
        }
        let j2 = run_mapmult(
            engine,
            fs,
            v_dir,
            &work.join(&format!("op_ht{it}")),
            &h.transpose(), // m×k
            &vht_dir,
            false,
            block,
            parts,
        )?;
        let vht = read_dense_result(fs, &vht_dir, parts, n, k, block)?; // n×k
        let hht = h.matmul(&h.transpose())?; // k×k
        w = w.mul_div(&vht, &w.matmul(&hht)?, eps)?;

        iters.push(vec![j1, j2]);
    }
    Ok(GnmfResult {
        iterations: iters,
        w,
        h,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::{generate_blocked_sparse, read_blocked_to_dense};
    use m3r::M3REngine;
    use simdfs::SimDfs;
    use simgrid::{Cluster, CostModel};
    use std::sync::Arc;

    fn frob_error(v: &DenseMatrix, w: &DenseMatrix, h: &DenseMatrix) -> f64 {
        let wh = w.matmul(h).unwrap();
        v.data
            .iter()
            .zip(&wh.data)
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            .sqrt()
    }

    #[test]
    fn gnmf_decreases_reconstruction_error() {
        let cluster = Cluster::new(3, CostModel::default());
        let fs = SimDfs::with_config(cluster.clone(), 1 << 20, 2);
        let (n, m, k, block, parts) = (30, 20, 3, 10, 3);
        generate_blocked_sparse(&fs, &HPath::new("/v"), n, m, block, 0.3, parts, 4).unwrap();
        let v = read_blocked_to_dense(&fs, &HPath::new("/v"), n, m, block, parts).unwrap();
        let mut engine = M3REngine::new(cluster, Arc::new(fs.clone()));

        let one = run_gnmf(
            &mut engine,
            &fs,
            &HPath::new("/v"),
            &HPath::new("/w1"),
            n,
            m,
            k,
            block,
            parts,
            1,
            7,
        )
        .unwrap();
        let five = run_gnmf(
            &mut engine,
            &fs,
            &HPath::new("/v"),
            &HPath::new("/w5"),
            n,
            m,
            k,
            block,
            parts,
            5,
            7,
        )
        .unwrap();
        let e1 = frob_error(&v, &one.w, &one.h);
        let e5 = frob_error(&v, &five.w, &five.h);
        assert!(
            e5 < e1,
            "more multiplicative updates must not increase error: {e5} vs {e1}"
        );
        // Factors remain non-negative (the algorithm's invariant).
        assert!(five.w.data.iter().all(|x| *x >= 0.0));
        assert!(five.h.data.iter().all(|x| *x >= 0.0));
        assert_eq!(five.iterations.len(), 5);
        assert!(five.total_sim_time() > 0.0);
    }

    #[test]
    fn iterative_gnmf_benefits_from_the_m3r_cache() {
        let cluster = Cluster::new(3, CostModel::default());
        let fs = SimDfs::with_config(cluster.clone(), 1 << 20, 2);
        let (n, m, k, block, parts) = (30, 20, 3, 10, 3);
        generate_blocked_sparse(&fs, &HPath::new("/v"), n, m, block, 0.3, parts, 4).unwrap();
        let mut engine = M3REngine::new(cluster, Arc::new(fs.clone()));
        let r = run_gnmf(
            &mut engine,
            &fs,
            &HPath::new("/v"),
            &HPath::new("/w"),
            n,
            m,
            k,
            block,
            parts,
            3,
            7,
        )
        .unwrap();
        // V is re-read by every job; only the first read hits the DFS.
        let first = &r.iterations[0][0];
        let later = &r.iterations[2][0];
        assert!(first.metrics.disk_bytes_read > 0);
        // Later jobs still stage the (small) fresh operand through the
        // distributed cache, but V itself comes from the key/value cache.
        assert!(
            later.metrics.disk_bytes_read * 2 < first.metrics.disk_bytes_read,
            "V served from cache in later iterations: {} vs {}",
            later.metrics.disk_bytes_read,
            first.metrics.disk_bytes_read
        );
        assert!(later.sim_time < first.sim_time);
    }
}
