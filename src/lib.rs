//! # m3r-repro — reproduction of *M3R: Increased Performance for In-Memory
//! Hadoop Jobs* (Shinnar, Cunningham, Herta, Saraswat; PVLDB 5(12), 2012)
//!
//! This umbrella crate re-exports the workspace so examples and integration
//! tests can reach every layer:
//!
//! * [`simgrid`] — the simulated cluster substrate (nodes, clocks, cost
//!   model, metrics);
//! * [`x10rt`] — the X10-style runtime (places, `at`/`finish`, teams,
//!   de-duplicating serialization);
//! * [`hmr_api`] — the Hadoop MapReduce API surface plus M3R's
//!   backward-compatible extensions;
//! * [`simdfs`] — the simulated HDFS;
//! * [`kvstore`] — M3R's distributed in-memory key/value store (§5.2);
//! * [`hadoop_engine`] — the baseline engine (§3.1), the paper's comparator;
//! * [`m3r`] — **the paper's contribution**: the in-memory engine (§3.2–5);
//! * [`sysml`] — the mini SystemML runtime and its three benchmark
//!   algorithms (§6.4);
//! * [`workloads`] — WordCount, the shuffle microbenchmark, and blocked
//!   sparse matvec (§6.1–6.3).
//!
//! See `README.md` for a walkthrough, `DESIGN.md` for the system inventory,
//! and `EXPERIMENTS.md` for paper-vs-measured results of every figure.

pub use hadoop_engine;
pub use hmr_api;
pub use kvstore;
pub use m3r;
pub use simdfs;
pub use simgrid;
pub use sysml;
pub use workloads;
pub use x10rt;
